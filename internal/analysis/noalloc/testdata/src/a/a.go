// Fixture for noalloc: each allocation-site class is flagged inside a
// marked function, the sanctioned zero-alloc idioms stay silent, the
// mark is required down the static call chain, and the //lint:ignore
// escape hatch works.
package a

import "fmt"

// Unmarked functions may allocate freely.
func Unchecked() []int {
	return []int{1, 2, 3}
}

//elsi:noalloc
func SliceLit() []int {
	return []int{1, 2} // want `slice literal allocates`
}

//elsi:noalloc
func MapLit() int {
	m := map[int]int{1: 2} // want `map literal allocates`
	return m[1]
}

//elsi:noalloc
func Escape() *int {
	type pt struct{ x int }
	p := &pt{x: 1} // want `&composite literal escapes to the heap`
	return &p.x
}

//elsi:noalloc
func Make(n int) int {
	buf := make([]int, n) // want `make allocates`
	return len(buf)
}

// The amortized append idioms are the whole point of the append-form
// query APIs: reassignment to the first argument and direct return.

//elsi:noalloc
func GoodAppend(out []int, v int) []int {
	out = append(out, v)
	out = append(append(out, v), v)
	out = append(out[:0], v) // buffer-reuse reslice idiom
	return append(out, v)
}

//elsi:noalloc
func BadAppend(a, b []int, v int) []int {
	b = append(a, v) // want `append result is not reassigned to its first argument`
	return b
}

//elsi:noalloc
func Capture(xs []int) int {
	total := 0
	each(xs, func(v int) { total += v }) // want `func literal captures total`
	return total
}

//elsi:noalloc
func CleanLiteral(xs []int) {
	each(xs, func(v int) {}) // non-capturing: no closure context
}

//elsi:noalloc
func each(xs []int, f func(int)) {
	for _, v := range xs {
		f(v) // calling a func value is dynamic dispatch: allowed
	}
}

// Interface boxing: concrete non-pointer-shaped values allocate;
// pointers ride in the interface word.

//elsi:noalloc
func BoxReturn(v int) any {
	return v // want `return boxes int into an interface`
}

//elsi:noalloc
func PointerReturn(p *int) any {
	return p
}

//elsi:noalloc
func BoxAssign(v float64) any {
	var x any
	x = v // want `assignment boxes float64 into an interface`
	return x
}

// The allocation-as-a-service packages are denied outright.

//elsi:noalloc
func Format(n int64) {
	fmt.Println(n) // want `argument boxes int64 into an interface` `call to fmt.Println in //elsi:noalloc function`
}

// The mark is required down the static call chain.

func plain(v int) int { return v + 1 }

//elsi:noalloc
func marked(v int) int { return v + 1 }

//elsi:noalloc
func Chain(v int) int {
	v = marked(v)
	return plain(v) // want `call to plain, which is not marked //elsi:noalloc`
}

// Strings are heap objects.

//elsi:noalloc
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//elsi:noalloc
func Bytes(s string) int {
	return len([]byte(s)) // want `string-to-slice conversion allocates`
}

// Goroutines and looping defers allocate their records.

//elsi:noalloc
func Spawn(ch chan int) {
	go send(ch) // want `go statement in //elsi:noalloc function`
}

//elsi:noalloc
func send(ch chan int) {
	ch <- 1
}

//elsi:noalloc
func DeferLoop(mu interface{ Unlock() }, n int) {
	for i := 0; i < n; i++ {
		defer mu.Unlock() // want `defer inside a loop`
	}
}

// The escape hatch works.

//elsi:noalloc
func Sanctioned() []int {
	//lint:ignore noalloc one-time warmup path measured to stay off the hot loop
	return []int{1}
}
