package noalloc_test

import (
	"testing"

	"elsi/internal/analysis/analysistest"
	"elsi/internal/analysis/noalloc"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), noalloc.Analyzer, "a")
}
