// Fixture for the atomicfield analyzer. Counter.n is the PR-1 racy
// counter: incremented through sync/atomic on the query path but read
// and written plainly elsewhere. Counter.ok shows the house style the
// analyzer pushes toward.
package a

import "sync/atomic"

type Counter struct {
	n    int64 // want `field n is used with sync/atomic pointer functions; declare it atomic.Int64`
	ok   atomic.Int64
	name string
}

// Inc is the sanctioned atomic access: not flagged as mixed (the
// declaration above still is).
func (c *Counter) Inc() { atomic.AddInt64(&c.n, 1) }

// Race is the bug: a plain increment racing Inc.
func (c *Counter) Race() { c.n++ } // want `non-atomic access to field n`

// Get is the bug's quieter sibling: a plain read racing Inc.
func (c *Counter) Get() int64 { return c.n } // want `non-atomic access to field n`

// IncOK and GetOK use an atomic value type: never flagged.
func (c *Counter) IncOK() { c.ok.Add(1) }

func (c *Counter) GetOK() int64 { return c.ok.Load() }

// Name touches a field sync/atomic never sees: not flagged.
func (c *Counter) Name() string { return c.name }
