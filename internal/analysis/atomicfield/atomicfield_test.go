package atomicfield_test

import (
	"testing"

	"elsi/internal/analysis/analysistest"
	"elsi/internal/analysis/atomicfield"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfield.Analyzer, "a")
}
