// Package atomicfield enforces the repository's atomic-counter house
// style. Two rules, both born from the PR-1 race in internal/store
// (a scan counter incremented with ++ on one goroutine and read
// plainly on another while queries raced a background rebuild):
//
//  1. A struct field that is accessed through sync/atomic pointer
//     functions anywhere in a package must be accessed that way
//     everywhere — a single plain read or write is a data race.
//  2. A field accessed through sync/atomic pointer functions should be
//     declared with an atomic value type (atomic.Int64 and friends, as
//     internal/store does), which makes rule 1 unviolable by
//     construction. The analyzer reports the declaration with a
//     suggested fix.
package atomicfield

import (
	"fmt"
	"go/ast"
	"go/types"

	"elsi/internal/analysis"
)

// Analyzer is the atomicfield analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "struct fields accessed via sync/atomic must be accessed atomically everywhere " +
		"and should be declared with an atomic value type (atomic.Int64 et al.)",
	Run: run,
}

// atomicType maps a basic type accessed through sync/atomic pointer
// calls to the atomic value type that should replace it.
var atomicType = map[types.BasicKind]string{
	types.Int32:   "atomic.Int32",
	types.Int64:   "atomic.Int64",
	types.Uint32:  "atomic.Uint32",
	types.Uint64:  "atomic.Uint64",
	types.Uintptr: "atomic.Uintptr",
}

func run(pass *analysis.Pass) error {
	// Pass 1: collect every struct field whose address is passed to a
	// sync/atomic function, and the exact selector nodes through which
	// that happens (those accesses are the sanctioned ones).
	fields := make(map[*types.Var]bool)
	sanctioned := make(map[ast.Expr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !isAtomicPkgFunc(pass, call.Fun) {
				return true
			}
			unary, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || unary.Op.String() != "&" {
				return true
			}
			sel, ok := unary.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if f := fieldOf(pass, sel); f != nil {
				fields[f] = true
				sanctioned[sel] = true
			}
			return true
		})
	}
	if len(fields) == 0 {
		return nil
	}

	// Pass 2: any other access to those fields is a race in waiting.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			f := fieldOf(pass, sel)
			if f == nil || !fields[f] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"non-atomic access to field %s, which is accessed with sync/atomic elsewhere in this package",
				f.Name())
			return true
		})
	}

	// Rule 2: report the declarations (when they live in this package)
	// with the migration fix.
	for f := range fields {
		if f.Pkg() != pass.Pkg {
			continue
		}
		basic, ok := f.Type().Underlying().(*types.Basic)
		if !ok {
			continue
		}
		repl, ok := atomicType[basic.Kind()]
		if !ok {
			continue
		}
		pass.Report(analysis.Diagnostic{
			Pos: f.Pos(),
			Message: fmt.Sprintf(
				"field %s is used with sync/atomic pointer functions; declare it %s so non-atomic access is impossible",
				f.Name(), repl),
			SuggestedFixes: []analysis.SuggestedFix{{
				Message: fmt.Sprintf("change the field type to %s and use its Load/Store/Add methods (see internal/store)", repl),
			}},
		})
	}
	return nil
}

// isAtomicPkgFunc reports whether fun resolves to a package-level
// function of sync/atomic (AddInt64, LoadInt64, StoreInt64,
// CompareAndSwapInt64, ... — every one takes the address as its first
// argument).
func isAtomicPkgFunc(pass *analysis.Pass, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil
}

// fieldOf returns the struct field selected by sel, or nil if sel is
// not a field selection.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
