package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Facts is the package-spanning fact store. It is built once per
// driver invocation from the //elsi: directives of every loaded module
// package (dependencies included), so an analyzer looking at package P
// can ask about a function or mutex field defined in a package P
// imports. Object identity holds across packages because the loader
// shares one *types.Package per import path.
//
// Directive grammar (each on a doc or trailing comment line):
//
//	//elsi:noalloc
//	    On a function or method declaration: the function promises not
//	    to allocate. The noalloc analyzer enforces the promise and
//	    requires every statically-resolved module callee to carry the
//	    same mark.
//
//	//elsi:lockorder [before=<target>[,<target>...]]
//	    On a struct field of type sync.Mutex or sync.RWMutex: the mutex
//	    participates in the package's declared lock order. Each target
//	    names a mutex that must be acquired strictly before this one:
//	    acquiring a target while this mutex is held is a cycle. A
//	    target is either a sibling field name in the same struct or
//	    Type.Field naming a mutex field of another struct in the same
//	    package.
//
// Unknown //elsi: verbs and unresolvable targets are reported as
// malformed-directive findings under the pseudo-analyzer "elsivet".
type Facts struct {
	noalloc map[*types.Func]bool
	// lockBefore maps a mutex field to the mutex fields declared to
	// come earlier in the acquisition order (its before= targets).
	lockBefore map[*types.Var][]*types.Var
	// ordered marks every mutex field carrying any lockorder directive.
	ordered map[*types.Var]bool
}

// NewFacts returns an empty fact store. Populate it with AddPackage.
func NewFacts() *Facts {
	return &Facts{
		noalloc:    make(map[*types.Func]bool),
		lockBefore: make(map[*types.Var][]*types.Var),
		ordered:    make(map[*types.Var]bool),
	}
}

// NoAlloc reports whether fn is marked //elsi:noalloc.
func (f *Facts) NoAlloc(fn *types.Func) bool {
	if f == nil || fn == nil {
		return false
	}
	return f.noalloc[fn]
}

// LockOrdered reports whether the mutex field v carries a lockorder
// directive.
func (f *Facts) LockOrdered(v *types.Var) bool {
	if f == nil {
		return false
	}
	return f.ordered[v]
}

// LockBefore returns the mutexes declared to be acquired strictly
// before v (v's before= targets).
func (f *Facts) LockBefore(v *types.Var) []*types.Var {
	if f == nil {
		return nil
	}
	return f.lockBefore[v]
}

// OrderedMutexes returns every mutex field carrying a lockorder
// directive, in no particular order.
func (f *Facts) OrderedMutexes() []*types.Var {
	if f == nil {
		return nil
	}
	out := make([]*types.Var, 0, len(f.ordered))
	for v := range f.ordered {
		out = append(out, v)
	}
	return out
}

// AddPackage scans one type-checked package for //elsi: directives and
// records the facts. Malformed directives are returned as findings;
// they do not abort the scan.
func (f *Facts) AddPackage(fset *token.FileSet, files []*ast.File, info *types.Info) []Finding {
	var bad []Finding
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Finding{Analyzer: "elsivet", Pos: fset.Position(pos), Message: msg})
	}
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				f.addFuncDirectives(n, info, report)
				return false // directives never nest inside bodies
			case *ast.TypeSpec:
				if st, ok := n.Type.(*ast.StructType); ok {
					f.addStructDirectives(n, st, info, report)
				}
				return false
			}
			return true
		})
		// Directives attached to anything else are mistakes worth
		// hearing about: scan every comment and flag elsi: lines that
		// the declaration walks above did not consume.
		f.checkStrayDirectives(file, info, report)
	}
	return bad
}

// directive splits an //elsi: comment into verb and argument text.
// ok is false when c is not an elsi directive at all.
func directive(c *ast.Comment) (verb, args string, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//elsi:")
	if !found {
		return "", "", false
	}
	verb, args, _ = strings.Cut(text, " ")
	return verb, strings.TrimSpace(args), true
}

func (f *Facts) addFuncDirectives(fd *ast.FuncDecl, info *types.Info, report func(token.Pos, string)) {
	if fd.Doc == nil {
		return
	}
	for _, c := range fd.Doc.List {
		verb, args, ok := directive(c)
		if !ok {
			continue
		}
		switch verb {
		case "noalloc":
			if args != "" {
				report(c.Pos(), "malformed //elsi:noalloc directive: takes no arguments")
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				report(c.Pos(), "//elsi:noalloc: cannot resolve function "+fd.Name.Name)
				continue
			}
			f.noalloc[fn] = true
		case "lockorder":
			report(c.Pos(), "//elsi:lockorder applies to sync.Mutex struct fields, not functions")
		default:
			report(c.Pos(), "unknown directive //elsi:"+verb)
		}
	}
}

// addStructDirectives handles lockorder directives on mutex fields.
// before= targets are resolved after all fields of the struct are
// seen, so a field may name a later sibling.
func (f *Facts) addStructDirectives(ts *ast.TypeSpec, st *ast.StructType, info *types.Info, report func(token.Pos, string)) {
	type pending struct {
		mutex   *types.Var
		targets []string
		pos     token.Pos
	}
	var pend []pending
	siblings := make(map[string]*types.Var)

	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			v, _ := info.Defs[name].(*types.Var)
			if v == nil {
				continue
			}
			siblings[name.Name] = v
			for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
				if cg == nil {
					continue
				}
				for _, c := range cg.List {
					verb, args, ok := directive(c)
					if !ok {
						continue
					}
					switch verb {
					case "lockorder":
						if !isMutexType(v.Type()) {
							report(c.Pos(), "//elsi:lockorder on non-mutex field "+name.Name+" (want sync.Mutex or sync.RWMutex)")
							continue
						}
						f.ordered[v] = true
						if args == "" {
							continue
						}
						// Only the first token is the clause; any
						// following prose is commentary.
						val, found := strings.CutPrefix(strings.Fields(args)[0], "before=")
						if !found || val == "" {
							report(c.Pos(), "malformed //elsi:lockorder directive: want `//elsi:lockorder [before=field[,field...]]`")
							continue
						}
						pend = append(pend, pending{mutex: v, targets: strings.Split(val, ","), pos: c.Pos()})
					case "noalloc":
						report(c.Pos(), "//elsi:noalloc applies to function declarations, not fields")
					default:
						report(c.Pos(), "unknown directive //elsi:"+verb)
					}
				}
			}
		}
	}

	tsObj := info.Defs[ts.Name]
	for _, p := range pend {
		for _, target := range p.targets {
			tv := resolveMutexTarget(target, siblings, tsObj, report, p.pos)
			if tv == nil {
				continue
			}
			f.ordered[tv] = true
			f.lockBefore[p.mutex] = append(f.lockBefore[p.mutex], tv)
		}
	}
}

// resolveMutexTarget resolves a before= target: either a sibling field
// name or Type.Field within the same package.
func resolveMutexTarget(target string, siblings map[string]*types.Var, tsObj types.Object, report func(token.Pos, string), pos token.Pos) *types.Var {
	if tname, fname, qualified := strings.Cut(target, "."); qualified {
		if tsObj == nil || tsObj.Pkg() == nil {
			report(pos, "//elsi:lockorder: cannot resolve target "+target)
			return nil
		}
		obj := tsObj.Pkg().Scope().Lookup(tname)
		tn, _ := obj.(*types.TypeName)
		if tn == nil {
			report(pos, "//elsi:lockorder: no type "+tname+" in package for target "+target)
			return nil
		}
		st, _ := tn.Type().Underlying().(*types.Struct)
		if st == nil {
			report(pos, "//elsi:lockorder: target type "+tname+" is not a struct")
			return nil
		}
		for i := 0; i < st.NumFields(); i++ {
			if fv := st.Field(i); fv.Name() == fname {
				if !isMutexType(fv.Type()) {
					report(pos, "//elsi:lockorder: target "+target+" is not a mutex field")
					return nil
				}
				return fv
			}
		}
		report(pos, "//elsi:lockorder: no field "+fname+" on "+tname)
		return nil
	}
	v := siblings[target]
	if v == nil {
		report(pos, "//elsi:lockorder: no sibling field "+target+" (use Type.Field for other structs)")
		return nil
	}
	if !isMutexType(v.Type()) {
		report(pos, "//elsi:lockorder: target "+target+" is not a mutex field")
		return nil
	}
	return v
}

// checkStrayDirectives flags //elsi: comments that are not attached to
// a function declaration or struct field — a floating directive does
// nothing, and silence would hide the typo.
func (f *Facts) checkStrayDirectives(file *ast.File, info *types.Info, report func(token.Pos, string)) {
	attached := make(map[*ast.Comment]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		var groups []*ast.CommentGroup
		switch n := n.(type) {
		case *ast.FuncDecl:
			groups = append(groups, n.Doc)
		case *ast.Field:
			groups = append(groups, n.Doc, n.Comment)
		}
		for _, cg := range groups {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				attached[c] = true
			}
		}
		return true
	})
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if attached[c] {
				continue
			}
			if verb, _, ok := directive(c); ok {
				report(c.Pos(), "floating //elsi:"+verb+" directive: attach it to a function declaration or struct field")
			}
		}
	}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, _ := t.(*types.Named)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}
