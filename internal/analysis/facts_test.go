package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

const factsSrc = `package p

import "sync"

//elsi:noalloc
func fast(v int) int { return v }

//elsi:noalloc extra words
func badargs() {}

//elsi:lockorder
func notafield() {}

type S struct {
	a sync.Mutex
	//elsi:lockorder before=a
	b sync.Mutex
	//elsi:lockorder
	c sync.RWMutex
	//elsi:lockorder
	n int
	//elsi:lockorder before=missing
	d sync.Mutex
	//elsi:lockorder before=T.m
	e sync.Mutex
}

type T struct {
	m sync.Mutex
}

//elsi:frobnicate
func unknown() {}
`

func checkFacts(t *testing.T, src string) (*Facts, []Finding, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	facts := NewFacts()
	bad := facts.AddPackage(fset, []*ast.File{f}, info)
	return facts, bad, pkg, info
}

func TestFactsDirectives(t *testing.T) {
	facts, bad, pkg, _ := checkFacts(t, factsSrc)

	fast, _ := pkg.Scope().Lookup("fast").(*types.Func)
	if fast == nil || !facts.NoAlloc(fast) {
		t.Errorf("fast should be marked noalloc")
	}

	st := pkg.Scope().Lookup("S").Type().Underlying().(*types.Struct)
	field := func(name string) *types.Var {
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == name {
				return st.Field(i)
			}
		}
		t.Fatalf("no field %s", name)
		return nil
	}
	a, b, c := field("a"), field("b"), field("c")
	if !facts.LockOrdered(b) || !facts.LockOrdered(c) {
		t.Errorf("b and c carry lockorder directives")
	}
	if !facts.LockOrdered(a) {
		t.Errorf("a is a before= target and should be tracked")
	}
	befores := facts.LockBefore(b)
	if len(befores) != 1 || befores[0] != a {
		t.Errorf("LockBefore(b) = %v, want [a]", befores)
	}
	// Cross-type target resolves to T.m.
	tm := pkg.Scope().Lookup("T").Type().Underlying().(*types.Struct).Field(0)
	e := field("e")
	if got := facts.LockBefore(e); len(got) != 1 || got[0] != tm {
		t.Errorf("LockBefore(e) = %v, want [T.m]", got)
	}

	wantBad := []string{
		"takes no arguments",
		"applies to sync.Mutex struct fields, not functions",
		"on non-mutex field n",
		"no sibling field missing",
		"unknown directive //elsi:frobnicate",
	}
	for _, want := range wantBad {
		found := false
		for _, f := range bad {
			if strings.Contains(f.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no malformed-directive finding containing %q in %v", want, bad)
		}
	}
	if len(bad) != len(wantBad) {
		t.Errorf("got %d malformed findings, want %d: %v", len(bad), len(wantBad), bad)
	}
}

func TestFactsFloatingDirective(t *testing.T) {
	_, bad, _, _ := checkFacts(t, `package p

//elsi:noalloc

var x int
`)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "floating //elsi:noalloc") {
		t.Errorf("floating directive: got %v", bad)
	}
}
