// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only. A fixture lives in testdata/src/<pkg>/ and may import the
// standard library (resolved by the source importer) but not other
// fixture packages.
//
// An expectation is a trailing comment on the line the diagnostic is
// reported at:
//
//	c.n++ // want `non-atomic access`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match the message of one diagnostic on that
// line; diagnostics without a matching expectation, and expectations
// without a matching diagnostic, fail the test. //lint:ignore
// directives are honoured exactly as the elsivet driver honours them,
// so fixtures can (and do) exercise the escape hatch.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"elsi/internal/analysis"
)

// TestData returns the absolute path of the package's testdata
// directory.
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run loads each fixture package from dir/src/<pkg>, applies a, and
// compares the diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, filepath.Join(dir, "src", pkg), a)
	}
}

type key struct {
	file string
	line int
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	sort.Strings(paths)
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("type checking fixture %s: %v", dir, err)
	}

	ignores, bad := analysis.ParseIgnores(fset, files)
	for _, f := range bad {
		t.Errorf("%s: %s", f.Pos, f.Message)
	}
	facts := analysis.NewFacts()
	for _, f := range facts.AddPackage(fset, files, info) {
		t.Errorf("%s: %s", f.Pos, f.Message)
	}

	type diag struct {
		pos token.Position
		msg string
	}
	var diags []diag
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Facts:     facts,
	}
	pass.Report = func(d analysis.Diagnostic) {
		pos := fset.Position(d.Pos)
		if ignores.Ignored(a.Name, pos) {
			return
		}
		diags = append(diags, diag{pos: pos, msg: d.Message})
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		k := key{file: d.pos.Filename, line: d.pos.Line}
		matched := false
		rest := wants[k][:0]
		for _, w := range wants[k] {
			if !matched && w.MatchString(d.msg) {
				matched = true
				continue
			}
			rest = append(rest, w)
		}
		wants[k] = rest
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", d.pos, d.msg)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w)
		}
	}
}

// wantRe extracts the quoted expectations from a want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses // want comments into per-line regexps.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[key][]*regexp.Regexp {
	t.Helper()
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{file: pos.Filename, line: pos.Line}
				for _, q := range wantRe.FindAllString(text, -1) {
					rx, err := regexp.Compile(unquote(q))
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					wants[k] = append(wants[k], rx)
				}
				if len(wants[k]) == 0 {
					t.Fatalf("%s: want comment with no pattern", pos)
				}
			}
		}
	}
	return wants
}

func unquote(q string) string {
	if len(q) >= 2 && (q[0] == '`' || q[0] == '"') {
		return q[1 : len(q)-1]
	}
	panic(fmt.Sprintf("malformed quoted pattern %q", q))
}
