// Fixture for ctxprop: positive hits for each rule, clean wrapper
// conventions, and the //lint:ignore escape hatch.
package a

import "context"

// Rule 1: a named context parameter must be consulted.

func Process(ctx context.Context, n int) int { // want `Process accepts a context.Context but never consults it`
	return n * 2
}

func Wait(ctx context.Context) { // clean: ctx is consulted
	<-ctx.Done()
}

func Quick(_ context.Context) int { return 1 } // clean: explicit opt-out

func threaded(ctx context.Context, n int) int { // clean: passed through
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// Rule 2: exported functions may not manufacture a context.

func Build(n int) int {
	ctx := context.Background() // want `exported Build manufactures context.Background`
	return threaded(ctx, n)
}

func Todo(n int) int {
	return threaded(context.TODO(), n) // want `exported Todo manufactures context.TODO`
}

func build(n int) int { // clean: unexported helpers may bottom out
	return threaded(context.Background(), n)
}

// Run is clean: the exported RunCtx sibling marks it as the sanctioned
// compatibility wrapper.

func Run(n int) int {
	return RunCtx(context.Background(), n)
}

func RunCtx(ctx context.Context, n int) int {
	return threaded(ctx, n)
}

// Rule 3: exported functions may not spawn unbounded goroutines.

func Detach(ch chan int) {
	go func() { // want `exported Detach spawns a goroutine but accepts no context.Context`
		ch <- 1
	}()
}

func SpawnCtx(ctx context.Context, ch chan int) { // clean: has and uses ctx
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

// Fan is clean: FanCtx marks it as the compatibility wrapper.

func Fan(ch chan int) {
	go func() { ch <- 1 }()
}

func FanCtx(ctx context.Context, ch chan int) {
	_ = ctx.Err()
	go func() { ch <- 1 }()
}

// The escape hatch works.

func Legacy(n int) int {
	//lint:ignore ctxprop this entry point predates the context plumbing
	ctx := context.Background()
	return threaded(ctx, n)
}
