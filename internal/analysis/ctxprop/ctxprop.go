// Package ctxprop enforces the context-propagation discipline from the
// fault-tolerance work: long-running or concurrent entry points must
// accept a context.Context from their caller and actually consult it,
// instead of manufacturing context.Background() internally where no
// deadline or cancellation can reach.
//
// Three rules, checked per function declaration:
//
//  1. A function with a context.Context parameter must use the
//     parameter somewhere in its body. A named-but-unused ctx is
//     exactly the gap that let builds ignore their deadline before
//     BuildModelCtx landed. (A parameter named _ is an explicit,
//     visible opt-out and is not flagged.)
//
//  2. An exported function with no context parameter must not call
//     context.Background() or context.TODO(): it should accept the
//     context from its caller. Compatibility wrappers are sanctioned
//     by convention — if the package also exports a <Name>Ctx sibling
//     (function, or method on the same receiver), the wrapper is the
//     blessed Background() injection point and is exempt.
//
//  3. An exported function with no context parameter must not spawn
//     goroutines: whoever starts concurrent work needs a way to stop
//     it. The <Name>Ctx sibling convention exempts wrappers here too.
package ctxprop

import (
	"go/ast"
	"go/types"

	"elsi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxprop",
	Doc:  "exported entry points that spawn goroutines or manufacture context.Background must accept and consult a context.Context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildGraph(pass)
	for _, fi := range g.Funcs {
		checkFunc(pass, fi)
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fi *analysis.FuncInfo) {
	fd := fi.Decl
	if fi.Obj == nil {
		return
	}
	sig, _ := fi.Obj.Type().(*types.Signature)
	if sig == nil {
		return
	}
	ctxParam := contextParam(sig)

	if ctxParam != nil {
		if ctxParam.Name() != "" && ctxParam.Name() != "_" && !usesVar(pass, fd.Body, ctxParam) {
			pass.Reportf(fd.Name.Pos(), "%s accepts a context.Context but never consults it; thread %s through blocking work or name it _ to opt out",
				fd.Name.Name, ctxParam.Name())
		}
		return
	}

	if !fd.Name.IsExported() || hasCtxSibling(pass, fi.Obj, sig) {
		return
	}

	for _, call := range fi.Calls {
		if isContextConstructor(call.Callee) {
			pass.Reportf(call.Site.Pos(), "exported %s manufactures %s.%s; accept a context.Context from the caller (or provide a %sCtx variant)",
				fd.Name.Name, call.Callee.Pkg().Name(), call.Callee.Name(), fd.Name.Name)
		}
	}
	for _, g := range fi.Gos {
		pass.Reportf(g.Stmt.Pos(), "exported %s spawns a goroutine but accepts no context.Context to bound it (or provide a %sCtx variant)",
			fd.Name.Name, fd.Name.Name)
	}
}

// contextParam returns the first context.Context parameter, if any.
func contextParam(sig *types.Signature) *types.Var {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return params.At(i)
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, _ := t.(*types.Named)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// usesVar reports whether v is referenced anywhere in body.
func usesVar(pass *analysis.Pass, body *ast.BlockStmt, v *types.Var) bool {
	if body == nil {
		return true // declaration without body: nothing to check
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
			used = true
		}
		return true
	})
	return used
}

// isContextConstructor reports whether fn is context.Background or
// context.TODO.
func isContextConstructor(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}

// hasCtxSibling reports whether the package exports a <Name>Ctx
// variant of fn: a package-level function for package-level functions,
// or a method on the same receiver type for methods.
func hasCtxSibling(pass *analysis.Pass, fn *types.Func, sig *types.Signature) bool {
	want := fn.Name() + "Ctx"
	if sig.Recv() == nil {
		obj := pass.Pkg.Scope().Lookup(want)
		sfn, _ := obj.(*types.Func)
		return sfn != nil && sfn.Exported()
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, _ := recv.(*types.Named)
	if named == nil {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == want && m.Exported() {
			return true
		}
	}
	return false
}
