package ctxprop_test

import (
	"testing"

	"elsi/internal/analysis/analysistest"
	"elsi/internal/analysis/ctxprop"
)

func TestCtxProp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxprop.Analyzer, "a")
}
