package gorolife_test

import (
	"testing"

	"elsi/internal/analysis/analysistest"
	"elsi/internal/analysis/gorolife"
)

func TestGorolife(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), gorolife.Analyzer, "a")
}
