// Fixture for gorolife: fire-and-forget goroutines are flagged; the
// Add-before-go idiom, completion signals in the spawned body, and
// same-package callees that signal are all clean.
package a

import "sync"

func work() {}

// Fire-and-forget: nothing can ever wait for this.

func Leak() {
	go func() { // want `fire-and-forget goroutine`
		work()
	}()
}

func LeakCall() {
	go work() // want `fire-and-forget goroutine`
}

// The Add-before-go idiom is clean.

func Joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// A body that signals completion itself is clean.

func Signals(ch chan int) {
	go func() {
		work()
		ch <- 1
	}()
}

func Closes(done chan struct{}) {
	go func() {
		defer close(done)
		work()
	}()
}

// A same-package callee whose body signals is clean.

var pool sync.WaitGroup

func worker() {
	defer pool.Done()
	work()
}

func SpawnWorker() {
	go worker()
}

// An Add after the go statement does not count: the race the idiom
// exists to prevent.

func AddAfter() {
	var wg sync.WaitGroup
	go func() { // want `fire-and-forget goroutine`
		work()
	}()
	wg.Add(1)
	wg.Wait()
}

// Literal scopes are independent: an Add in the outer function does
// not excuse a spawn inside a nested literal.

func Nested() func() {
	var wg sync.WaitGroup
	wg.Add(1)
	return func() {
		go work() // want `fire-and-forget goroutine`
		wg.Done()
	}
}

// The escape hatch works.

func Sanctioned() {
	//lint:ignore gorolife detached telemetry flusher, lifecycle owned by the process
	go work()
}
