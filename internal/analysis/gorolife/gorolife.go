// Package gorolife flags fire-and-forget goroutines: every go
// statement must have a visible join or drain path, so shutdown can
// actually wait for the work it started (the discipline behind
// engine.Close and server.Close draining before teardown).
//
// A go statement is accounted for when any of the following holds:
//
//   - a sync.WaitGroup Add call appears before it in the same
//     enclosing function or literal body (the Add-before-go idiom; the
//     spawned body is then expected to Done, usually via defer);
//   - the spawned function literal signals completion itself: it calls
//     (*sync.WaitGroup).Done, closes a channel, or sends on a channel
//     (directly or in a defer);
//   - the spawned callee is a function declared in the same package
//     whose body signals completion the same way.
//
// Anything else is a goroutine nothing can wait for, and is reported.
package gorolife

import (
	"go/ast"
	"go/token"
	"go/types"

	"elsi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "gorolife",
	Doc:  "every go statement needs a visible join/drain path (WaitGroup Add/Done, channel close or send)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	g := analysis.BuildGraph(pass)
	for _, fi := range g.Funcs {
		if fi.Decl.Body == nil {
			continue
		}
		checkScope(pass, g, fi.Decl.Body)
	}
	return nil
}

// checkScope examines one function or literal body: go statements
// directly in it are checked against Adds directly in it, and nested
// literal bodies recurse as fresh scopes.
func checkScope(pass *analysis.Pass, g *analysis.Graph, body *ast.BlockStmt) {
	var adds []token.Pos
	var gos []*ast.GoStmt

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			checkScope(pass, g, n.Body)
			return
		case *ast.GoStmt:
			gos = append(gos, n)
			// The spawned expression's own literal is inspected by
			// accountedFor, not treated as a nested scope here; but a
			// literal nested in the call's ARGUMENTS is.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkScope(pass, g, lit.Body)
			}
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, func(c ast.Node) bool {
					if lit, ok := c.(*ast.FuncLit); ok {
						checkScope(pass, g, lit.Body)
						return false
					}
					return true
				})
			}
			return
		case *ast.CallExpr:
			if isWaitGroupMethod(pass.TypesInfo, n, "Add") {
				adds = append(adds, n.Pos())
			}
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c)
			return false
		})
	}
	walk(body)

	for _, g2 := range gos {
		if accountedFor(pass, g, g2, adds) {
			continue
		}
		pass.Reportf(g2.Pos(), "fire-and-forget goroutine: no WaitGroup Add before the go statement and the spawned body never signals completion (Done, close, or channel send)")
	}
}

// accountedFor decides whether one go statement has a join/drain path.
func accountedFor(pass *analysis.Pass, g *analysis.Graph, goStmt *ast.GoStmt, adds []token.Pos) bool {
	for _, p := range adds {
		if p < goStmt.Pos() {
			return true
		}
	}
	if lit, ok := goStmt.Call.Fun.(*ast.FuncLit); ok {
		return signalsCompletion(pass.TypesInfo, lit.Body)
	}
	if callee := analysis.StaticCallee(pass.TypesInfo, goStmt.Call); callee != nil {
		if fi := g.Lookup(callee); fi != nil && fi.Decl.Body != nil {
			return signalsCompletion(pass.TypesInfo, fi.Decl.Body)
		}
	}
	return false
}

// signalsCompletion reports whether body contains a completion signal:
// a WaitGroup Done, a close, or a channel send (including in defers,
// excluding nested literals that the body merely constructs but may
// never run).
func signalsCompletion(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if found || n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.SendStmt:
			found = true
			return
		case *ast.CallExpr:
			if isWaitGroupMethod(info, n, "Done") || isClose(info, n) {
				found = true
				return
			}
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c)
			return false
		})
	}
	walk(body)
	return found
}

// isWaitGroupMethod reports whether call invokes the named method of
// sync.WaitGroup.
func isWaitGroupMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := analysis.StaticCallee(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, _ := recv.(*types.Named)
	return named != nil && named.Obj().Name() == "WaitGroup"
}

// isClose reports whether call is the close builtin.
func isClose(info *types.Info, call *ast.CallExpr) bool {
	id, _ := ast.Unparen(call.Fun).(*ast.Ident)
	if id == nil {
		return false
	}
	b, _ := info.Uses[id].(*types.Builtin)
	return b != nil && b.Name() == "close"
}
