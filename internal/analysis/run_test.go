package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const ignoreSrc = `package p

func a() int {
	//lint:ignore floateq tied keys collapse on purpose
	return 1
}

func b() int {
	x := 1 //lint:ignore lockedcall,floateq trailing form, two analyzers
	return x
}

func c() {
	//lint:ignore floateq
	_ = 0
}
`

func TestParseIgnores(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set, bad := ParseIgnores(fset, []*ast.File{f})

	at := func(line int) token.Position {
		return token.Position{Filename: "p.go", Line: line}
	}
	// Standalone directive on line 4 covers lines 4 and 5.
	if !set.Ignored("floateq", at(4)) || !set.Ignored("floateq", at(5)) {
		t.Errorf("standalone directive: want floateq ignored on lines 4-5")
	}
	if set.Ignored("floateq", at(6)) {
		t.Errorf("directive must not extend past the following line")
	}
	if set.Ignored("lockedcall", at(5)) {
		t.Errorf("directive names floateq only; lockedcall must not be ignored")
	}
	// Trailing directive on line 9 covers its own line for both names.
	if !set.Ignored("lockedcall", at(9)) || !set.Ignored("floateq", at(9)) {
		t.Errorf("trailing directive: want both analyzers ignored on line 9")
	}
	// The directive on line 14 has no reason: malformed.
	if len(bad) != 1 {
		t.Fatalf("want 1 malformed directive, got %d", len(bad))
	}
	if bad[0].Pos.Line != 14 || !strings.Contains(bad[0].Message, "malformed") {
		t.Errorf("malformed finding = %v, want line 14", bad[0])
	}
	// A malformed directive suppresses nothing.
	if set.Ignored("floateq", at(15)) {
		t.Errorf("malformed directive must not suppress anything")
	}
}
