package analysis

import (
	"go/ast"
	"go/types"
)

// CallKind classifies where in the control shape of a function a call
// site sits. The graph is intraprocedural: every call a function
// lexically contains is recorded, tagged by whether it runs inline, at
// return (defer), on a new goroutine, or inside a nested function
// literal (whose execution time is unknown).
type CallKind uint8

const (
	// CallDirect runs on the function's own goroutine, in statement order.
	CallDirect CallKind = iota
	// CallDeferred runs when the function returns.
	CallDeferred
	// CallGo is the call expression of a go statement.
	CallGo
	// CallInLiteral sits inside a nested func literal; when (and
	// whether) it runs depends on what the literal's value is used for.
	CallInLiteral
)

func (k CallKind) String() string {
	switch k {
	case CallDirect:
		return "direct"
	case CallDeferred:
		return "deferred"
	case CallGo:
		return "go"
	case CallInLiteral:
		return "in-literal"
	}
	return "unknown"
}

// Call is one call site inside a function.
type Call struct {
	Site   *ast.CallExpr
	Callee *types.Func // nil for func values, builtins and conversions
	Kind   CallKind
}

// GoSite is one go statement inside a function.
type GoSite struct {
	Stmt *ast.GoStmt
	// InLiteral is true when the go statement itself sits inside a
	// nested func literal rather than directly in the function body.
	InLiteral bool
}

// FuncInfo is the per-function node of the graph.
type FuncInfo struct {
	Decl  *ast.FuncDecl
	Obj   *types.Func // nil only if type checking lost the declaration
	Calls []Call
	Gos   []GoSite
	// Lits holds every func literal lexically inside the body,
	// outermost first.
	Lits []*ast.FuncLit
}

// Graph holds one FuncInfo per function declaration in a package, in
// file order.
type Graph struct {
	Funcs []*FuncInfo
	byObj map[*types.Func]*FuncInfo
}

// Lookup returns the node for fn, or nil if fn is not declared in the
// graph's package.
func (g *Graph) Lookup(fn *types.Func) *FuncInfo {
	if g == nil || fn == nil {
		return nil
	}
	return g.byObj[fn]
}

// BuildGraph constructs the call/defer/goroutine graph for the pass's
// package.
func BuildGraph(pass *Pass) *Graph {
	g := &Graph{byObj: make(map[*types.Func]*FuncInfo)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := &FuncInfo{Decl: fd}
			fi.Obj, _ = pass.TypesInfo.Defs[fd.Name].(*types.Func)
			collectFunc(fd.Body, pass.TypesInfo, fi)
			g.Funcs = append(g.Funcs, fi)
			if fi.Obj != nil {
				g.byObj[fi.Obj] = fi
			}
		}
	}
	return g
}

// collectFunc walks a function body classifying call sites. ctx tracks
// the pending classification for the next CallExpr encountered on the
// spine (defer / go); descending into a FuncLit switches every nested
// call to CallInLiteral.
func collectFunc(body ast.Node, info *types.Info, fi *FuncInfo) {
	var walk func(n ast.Node, kind CallKind, inLit bool)
	walk = func(n ast.Node, kind CallKind, inLit bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.GoStmt:
			fi.Gos = append(fi.Gos, GoSite{Stmt: n, InLiteral: inLit})
			fi.Calls = append(fi.Calls, Call{Site: n.Call, Callee: StaticCallee(info, n.Call), Kind: CallGo})
			walkChildren(n.Call, info, fi, kind, inLit, walk)
			return
		case *ast.DeferStmt:
			k := CallDeferred
			if inLit {
				k = CallInLiteral
			}
			fi.Calls = append(fi.Calls, Call{Site: n.Call, Callee: StaticCallee(info, n.Call), Kind: k})
			walkChildren(n.Call, info, fi, kind, inLit, walk)
			return
		case *ast.FuncLit:
			fi.Lits = append(fi.Lits, n)
			walk(n.Body, CallInLiteral, true)
			return
		case *ast.CallExpr:
			fi.Calls = append(fi.Calls, Call{Site: n, Callee: StaticCallee(info, n), Kind: kind})
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c, kind, inLit)
			return false
		})
	}
	walk(body, CallDirect, false)
}

// walkChildren visits the arguments (and Fun operand) of a call whose
// own classification has already been recorded.
func walkChildren(call *ast.CallExpr, info *types.Info, fi *FuncInfo, kind CallKind, inLit bool, walk func(ast.Node, CallKind, bool)) {
	walk(call.Fun, kind, inLit)
	for _, arg := range call.Args {
		walk(arg, kind, inLit)
	}
}

// StaticCallee resolves the *types.Func a call statically dispatches
// to: a package function, a method (possibly through an interface), or
// nil for builtins, conversions and func-typed values.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
