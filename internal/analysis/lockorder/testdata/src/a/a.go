// Fixture for lockorder: observed and declared acquisition-order
// cycles, blocking-while-held hazards, and the clean idioms that must
// stay silent.
package a

import (
	"sync"
	"time"
)

// Observed-only cycle: two paths acquire the pair in opposite orders.
// Both acquisition sites participate — a deadlock needs two paths — so
// both are reported.

type Pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *Pair) AB() {
	p.a.Lock()
	p.b.Lock() // want `lock order cycle: field b acquired while field a is held`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *Pair) BA() {
	p.b.Lock()
	p.a.Lock() // want `lock order cycle: field a acquired while field b is held`
	p.a.Unlock()
	p.b.Unlock()
}

// Declared order vs. code: reg must be acquired before inner. Nest
// follows the declaration, Inverted breaks it; the combined graph is
// cyclic, so both sites report.

type Registry struct {
	reg sync.Mutex
	//elsi:lockorder before=reg
	inner sync.Mutex
}

func (r *Registry) Nest() {
	r.reg.Lock()
	r.inner.Lock() // want `lock order cycle: field inner acquired while field reg is held`
	r.inner.Unlock()
	r.reg.Unlock()
}

func (r *Registry) Inverted() {
	r.inner.Lock()
	defer r.inner.Unlock()
	r.reg.Lock() // want `lock order cycle: field reg acquired while field inner is held`
	r.reg.Unlock()
}

// A declared order the code follows is silent.

type Ordered struct {
	first sync.Mutex
	//elsi:lockorder before=first
	second sync.Mutex
}

func (o *Ordered) Both() {
	o.first.Lock()
	o.second.Lock()
	o.second.Unlock()
	o.first.Unlock()
}

// Declared-only cycle: the directives contradict each other before any
// code runs.

type Cyclic struct {
	//elsi:lockorder before=down
	up sync.Mutex // want `//elsi:lockorder declarations form a cycle`
	//elsi:lockorder before=up
	down sync.Mutex // want `//elsi:lockorder declarations form a cycle`
}

// Blocking-while-held hazards.

func SleepUnderLock(mu *sync.Mutex) {
	mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding mu`
	mu.Unlock()
}

func RecvUnderLock(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	defer mu.Unlock()
	return <-ch // want `channel receive while holding mu`
}

func DrainUnderLock(mu *sync.Mutex, ch chan int) int {
	total := 0
	mu.Lock()
	defer mu.Unlock()
	for v := range ch { // want `range over channel while holding mu`
		total += v
	}
	return total
}

// The clean shapes: release before blocking, non-blocking select, and
// function literals as fresh scopes.

func UnlockFirst(mu *sync.Mutex, ch chan int) int {
	mu.Lock()
	x := 1
	mu.Unlock()
	return x + <-ch
}

func TryNotify(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

func LiteralScope(mu *sync.Mutex, ch chan int) func() {
	mu.Lock()
	defer mu.Unlock()
	return func() { ch <- 1 }
}

// The escape hatch works.

func SanctionedSleep(mu *sync.Mutex) {
	mu.Lock()
	//lint:ignore lockorder deliberate throttle while exclusive
	time.Sleep(time.Millisecond)
	mu.Unlock()
}
