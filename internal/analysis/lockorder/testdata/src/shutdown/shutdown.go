// Fixture reproducing the server shutdown-ordering invariant: Close
// must drain in-flight work BEFORE tearing down under the state lock.
// The reverse order deadlocks — a handler that needs the lock to
// finish can never complete, so Wait never returns — and lockorder
// turns that blessed ordering into a checked invariant.
package shutdown

import "sync"

type Server struct {
	//elsi:lockorder
	mu      sync.Mutex
	wg      sync.WaitGroup
	closed  bool
	pending map[int]chan struct{}
}

// CloseBad waits for handlers while holding the state lock: the
// pre-drain-order bug.
func (s *Server) CloseBad() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.wg.Wait() // want `sync.WaitGroup.Wait while holding field mu`
}

// CloseGood is the blessed order: flip the flag under the lock,
// release it, then drain.
func (s *Server) CloseGood() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
}

// NotifyBad parks on a channel send with the lock held.
func (s *Server) NotifyBad(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.pending[id]
	ch <- struct{}{} // want `channel send while holding field mu`
}

// NotifyGood copies what it needs under the lock and sends after.
func (s *Server) NotifyGood(id int) {
	s.mu.Lock()
	ch := s.pending[id]
	s.mu.Unlock()
	ch <- struct{}{}
}
