// Package lockorder derives a package-level lock-acquisition order and
// reports the two ways concurrent shutdown code deadlocks:
//
//  1. Order cycles. Every time a mutex B is acquired while mutex A is
//     held, the analyzer records the edge A→B. //elsi:lockorder
//     before=X directives on mutex fields contribute declared edges
//     X→field. A cycle in the combined graph means two code paths (or
//     a code path and the declared design) acquire the same mutexes in
//     opposite orders — the classic AB/BA deadlock.
//
//  2. Blocking while holding. A channel send or receive, a select with
//     no default, a range over a channel, (*sync.WaitGroup).Wait, or
//     time.Sleep executed while any mutex is held parks the goroutine
//     with the lock still taken — exactly the shutdown hazard the
//     server drain order exists to avoid (engine must be drained
//     before teardown precisely so no one blocks under the state
//     lock).
//
// The analysis is intraprocedural and flow-approximate: events in one
// function (or function literal — each literal is a fresh scope) are
// swept in source order, a deferred Unlock keeps the mutex held to the
// end of the scope, and an explicit Unlock releases it at that point.
// Mutexes are identified by their struct field (so every instance of a
// type shares one node), or by the variable for locals.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"elsi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "lock-acquisition cycles (observed or vs //elsi:lockorder declarations) and blocking operations while a mutex is held",
	Run:  run,
}

type eventKind uint8

const (
	evAcquire eventKind = iota
	evRelease
	evDeferRelease
	evBlock
)

type event struct {
	kind  eventKind
	pos   token.Pos
	mutex types.Object // acquire/release
	what  string       // block: description of the blocking operation
}

// edge is one observed or declared ordering constraint: from is held
// (or declared earlier) when to is acquired.
type edge struct {
	from, to types.Object
}

func run(pass *analysis.Pass) error {
	observed := make(map[edge]token.Pos)
	nodes := make(map[types.Object]bool)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sweepScopes(pass, fd.Body, observed, nodes)
		}
	}

	// Declared edges: before=X on field m means X is acquired before
	// m, i.e. the edge X→m. Restrict to mutexes of this package so a
	// package is only diagnosed for its own declarations.
	declared := make(map[edge]bool)
	for _, m := range pass.Facts.OrderedMutexes() {
		if m.Pkg() != pass.Pkg {
			continue
		}
		nodes[m] = true
		for _, x := range pass.Facts.LockBefore(m) {
			declared[edge{from: x, to: m}] = true
			nodes[x] = true
		}
	}

	reportCycles(pass, observed, declared, nodes)
	return nil
}

// sweepScopes collects lock/block events for the body and each nested
// function literal (a fresh scope: a literal runs on an unknown
// goroutine, so it inherits no held set), then sweeps each scope.
func sweepScopes(pass *analysis.Pass, body *ast.BlockStmt, observed map[edge]token.Pos, nodes map[types.Object]bool) {
	var events []event
	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			sweepScopes(pass, n.Body, observed, nodes)
			return
		case *ast.DeferStmt:
			walk(n.Call, true)
			return
		case *ast.SendStmt:
			events = append(events, event{kind: evBlock, pos: n.Pos(), what: "channel send"})
			// fall through to children for nested receives etc.
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, event{kind: evBlock, pos: n.Pos(), what: "channel receive"})
			}
		case *ast.SelectStmt:
			blocking := true
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					blocking = false
				}
			}
			if blocking {
				events = append(events, event{kind: evBlock, pos: n.Pos(), what: "select"})
			}
			// Walk only the case bodies: the comm clauses' sends and
			// receives are part of the select just accounted for.
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						walk(s, deferred)
					}
				}
			}
			return
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					events = append(events, event{kind: evBlock, pos: n.Pos(), what: "range over channel"})
				}
			}
		case *ast.CallExpr:
			if ev, ok := classifyCall(pass, n, deferred); ok {
				events = append(events, ev)
			}
		}
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			walk(c, deferred)
			return false
		})
	}
	walk(body, false)

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	sweep(pass, events, observed, nodes)
}

// classifyCall turns a call into a lock event or blocking event.
func classifyCall(pass *analysis.Pass, call *ast.CallExpr, deferred bool) (event, bool) {
	fn := analysis.StaticCallee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return event{}, false
	}
	switch fn.Pkg().Path() {
	case "sync":
		switch fn.Name() {
		case "Lock", "RLock", "TryLock", "TryRLock":
			if m := mutexOf(pass, call); m != nil {
				if deferred {
					return event{}, false // deferred acquire: out of scope
				}
				return event{kind: evAcquire, pos: call.Pos(), mutex: m}, true
			}
		case "Unlock", "RUnlock":
			if m := mutexOf(pass, call); m != nil {
				k := evRelease
				if deferred {
					k = evDeferRelease
				}
				return event{kind: k, pos: call.Pos(), mutex: m}, true
			}
		case "Wait":
			if recvNamed(fn) == "WaitGroup" {
				return event{kind: evBlock, pos: call.Pos(), what: "sync.WaitGroup.Wait"}, true
			}
		}
	case "time":
		if fn.Name() == "Sleep" {
			return event{kind: evBlock, pos: call.Pos(), what: "time.Sleep"}, true
		}
	}
	return event{}, false
}

// sweep runs the source-order lock-state machine over one scope's
// events, recording observed edges and reporting blocking-while-held.
func sweep(pass *analysis.Pass, events []event, observed map[edge]token.Pos, nodes map[types.Object]bool) {
	held := make(map[types.Object]token.Pos) // mutex -> acquire pos
	for _, ev := range events {
		switch ev.kind {
		case evAcquire:
			nodes[ev.mutex] = true
			for other := range held {
				if other == ev.mutex {
					continue
				}
				e := edge{from: other, to: ev.mutex}
				if _, ok := observed[e]; !ok {
					observed[e] = ev.pos
				}
			}
			held[ev.mutex] = ev.pos
		case evRelease:
			delete(held, ev.mutex)
		case evDeferRelease:
			// Held until the end of the scope: leave it in the set.
		case evBlock:
			if len(held) == 0 {
				continue
			}
			pass.Reportf(ev.pos, "%s while holding %s: blocking with a mutex held stalls every other acquirer (release the lock before blocking, as the engine drain order does)",
				ev.what, heldNames(held))
		}
	}
}

// reportCycles finds strongly connected components in the combined
// observed+declared order graph and reports every observed edge inside
// one; declared-only cycles are reported at the mutex declarations.
func reportCycles(pass *analysis.Pass, observed map[edge]token.Pos, declared map[edge]bool, nodes map[types.Object]bool) {
	succ := make(map[types.Object][]types.Object)
	addEdge := func(e edge) {
		succ[e.from] = append(succ[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	for e := range observed {
		addEdge(e)
	}
	for e := range declared {
		addEdge(e)
	}

	comp := scc(nodes, succ)
	inCycle := func(e edge) bool {
		c, ok := comp[e.from]
		return ok && c == comp[e.to] && c.size > 1
	}

	type rep struct {
		pos token.Pos
		msg string
	}
	var reps []rep
	observedIn := make(map[*component]bool)
	for e, pos := range observed {
		if !inCycle(e) {
			continue
		}
		observedIn[comp[e.from]] = true
		reps = append(reps, rep{pos: pos, msg: fmt.Sprintf(
			"lock order cycle: %s acquired while %s is held, but another path (or an //elsi:lockorder declaration) orders %s before %s",
			objName(e.to), objName(e.from), objName(e.to), objName(e.from))})
	}
	for e := range declared {
		if !inCycle(e) {
			continue
		}
		// Report the declared half only when no observed edge already
		// localises this component's cycle to code.
		if !observedIn[comp[e.from]] {
			reps = append(reps, rep{pos: e.to.Pos(), msg: fmt.Sprintf(
				"//elsi:lockorder declarations form a cycle involving %s and %s", objName(e.from), objName(e.to))})
		}
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].pos < reps[j].pos })
	for _, r := range reps {
		pass.Reportf(r.pos, "%s", r.msg)
	}
}

// component is one strongly connected component.
type component struct{ size int }

// scc computes strongly connected components with Tarjan's algorithm.
func scc(nodes map[types.Object]bool, succ map[types.Object][]types.Object) map[types.Object]*component {
	index := make(map[types.Object]int)
	low := make(map[types.Object]int)
	onStack := make(map[types.Object]bool)
	comp := make(map[types.Object]*component)
	var stack []types.Object
	next := 0

	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			c := &component{}
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = c
				c.size++
				if w == v {
					break
				}
			}
		}
	}
	// Deterministic iteration: sort nodes by position.
	ordered := make([]types.Object, 0, len(nodes))
	for v := range nodes {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })
	for _, v := range ordered {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comp
}

// mutexOf resolves the mutex a Lock/Unlock call operates on: the
// struct field for x.mu.Lock() chains (shared across instances), or
// the variable object for locals.
func mutexOf(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if sel == nil {
		return nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		if s := pass.TypesInfo.Selections[x]; s != nil && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		// Package-qualified: pkg.Mu.Lock().
		if obj, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
			return obj
		}
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[x].(*types.Var); ok {
			return obj
		}
	}
	return nil
}

// recvNamed returns the name of a method's receiver type, or "".
func recvNamed(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	if named == nil {
		return ""
	}
	return named.Obj().Name()
}

// objName renders a mutex object with its owner type when it is a
// struct field.
func objName(o types.Object) string {
	if v, ok := o.(*types.Var); ok && v.IsField() {
		return "field " + v.Name()
	}
	return o.Name()
}

// heldNames renders the held set deterministically.
func heldNames(held map[types.Object]token.Pos) string {
	names := make([]string, 0, len(held))
	for m := range held {
		names = append(names, objName(m))
	}
	sort.Strings(names)
	s := names[0]
	for _, n := range names[1:] {
		s += ", " + n
	}
	return s
}
