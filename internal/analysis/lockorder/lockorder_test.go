package lockorder_test

import (
	"testing"

	"elsi/internal/analysis/analysistest"
	"elsi/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "a", "shutdown")
}
