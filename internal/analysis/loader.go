package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package. Standard-library
// dependencies are resolved through go/importer's source importer and
// are not surfaced here; only module packages get syntax and type
// information attached.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listEntry mirrors the subset of `go list -json` output the loader
// consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go command (rooted at dir), parses and
// type-checks every matched module package plus its in-module
// dependencies, and returns every module package in import path order
// — dependency-only packages included, flagged DepOnly, so the fact
// store can see directives on imported code while Run lints only the
// pattern-matched set. Test files are not loaded: the suite lints the
// library surface, and fixture code under testdata is exercised
// separately by the analysistest package.
func Load(dir string, patterns []string) ([]*Package, error) {
	entries, err := golist(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	byPath := make(map[string]*listEntry, len(entries))
	for _, e := range entries {
		byPath[e.ImportPath] = e
	}
	loaded := make(map[string]*types.Package)
	imp := &moduleImporter{std: std, byPath: byPath, loaded: loaded}

	var out []*Package
	// `go list -deps` emits dependencies before dependents, so a single
	// in-order sweep sees every in-module import already type-checked.
	for _, e := range entries {
		if e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, e, imp)
		if err != nil {
			return nil, err
		}
		loaded[e.ImportPath] = pkg.Types
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// golist runs `go list -e -deps -json` and decodes the stream.
func golist(dir string, patterns []string) ([]*listEntry, error) {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var entries []*listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if e.Error != nil && !e.Standard {
			return nil, fmt.Errorf("go list: %s: %s", e.ImportPath, e.Error.Err)
		}
		entries = append(entries, &e)
	}
	return entries, nil
}

// typecheck parses and type-checks one module package.
func typecheck(fset *token.FileSet, e *listEntry, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(e.GoFiles))
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if len(typeErrs) < 10 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	tpkg, _ := conf.Check(e.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type checking %s:\n\t%s", e.ImportPath, strings.Join(typeErrs, "\n\t"))
	}
	return &Package{
		ImportPath: e.ImportPath,
		Dir:        e.Dir,
		Name:       e.Name,
		GoFiles:    e.GoFiles,
		Standard:   e.Standard,
		DepOnly:    e.DepOnly,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// moduleImporter resolves in-module imports from the packages the
// loader has already checked and defers everything else (the standard
// library) to the source importer.
type moduleImporter struct {
	std    types.Importer
	byPath map[string]*listEntry
	loaded map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if e, ok := m.byPath[path]; ok && !e.Standard {
		if p, ok := m.loaded[path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("module package %s not yet type-checked (go list order violated)", path)
	}
	return m.std.Import(path)
}
