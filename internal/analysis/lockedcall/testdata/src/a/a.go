// Fixture for the lockedcall analyzer. The positive cases encode the
// PR-1 bug class: a *Locked helper reachable without the receiver's
// mutex, most dangerously from a goroutine spawned inside a locked
// region.
package a

import "sync"

type P struct {
	mu sync.RWMutex
	n  int
}

func (p *P) tickLocked() { p.n++ }

func (p *P) readLocked() int { return p.n }

// Tick holds the write lock across the call: not flagged.
func (p *P) Tick() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tickLocked()
}

// Read holds the read lock across the call: not flagged.
func (p *P) Read() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.readLocked()
}

// doubleLocked is itself *Locked on the same receiver: not flagged.
func (p *P) doubleLocked() { p.tickLocked() }

// Bad never acquires the lock.
func (p *P) Bad() {
	p.tickLocked() // want `call to tickLocked without holding the receiver's lock`
}

// BadRelease released the lock before the call.
func (p *P) BadRelease() {
	p.mu.Lock()
	p.mu.Unlock()
	p.tickLocked() // want `call to tickLocked without holding the receiver's lock`
}

// BadGo spawns a goroutine inside the locked region; the closure runs
// after Unlock and must not inherit the caller's lock state.
func (p *P) BadGo() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		p.tickLocked() // want `call to tickLocked without holding the receiver's lock`
	}()
}

// GoodGo locks inside the closure itself: not flagged.
func (p *P) GoodGo() {
	go func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.tickLocked()
	}()
}

type Q struct{ mu sync.Mutex }

func (q *Q) pokeLocked() {}

// crossLocked is *Locked, but on P — it says nothing about q's mutex.
func (p *P) crossLocked(q *Q) {
	q.pokeLocked() // want `call to pokeLocked without holding the receiver's lock`
}

// cross acquires q's own mutex first: not flagged.
func (p *P) cross(q *Q) {
	q.mu.Lock()
	q.pokeLocked()
	q.mu.Unlock()
}

// Exempt demonstrates the escape hatch: suppressed, no want.
func (p *P) Exempt() {
	//lint:ignore lockedcall fixture exercises the escape hatch
	p.tickLocked()
}
