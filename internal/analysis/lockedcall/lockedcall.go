// Package lockedcall enforces the repository's *Locked naming
// discipline (DESIGN.md, "Concurrent update processor"): a function
// whose name ends in "Locked" asserts that its receiver's mutex is
// held by the caller. The analyzer therefore requires every call to a
// *Locked function to come either from another *Locked method on the
// same receiver type, or from a function body that acquires a
// sync.Mutex/RWMutex rooted at the same receiver before the call and
// has not released it on the straight-line path in between.
//
// Function literals are independent scopes: a closure does not inherit
// the lock state of the function that created it, because closures in
// this codebase typically run on other goroutines (the background
// rebuild in internal/rebuild is the motivating example — the PR-1 bug
// class was exactly an unguarded *Locked call reachable from a
// goroutine).
package lockedcall

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"elsi/internal/analysis"
)

// Analyzer is the lockedcall analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockedcall",
	Doc: "calls to *Locked functions must hold the receiver's mutex " +
		"(call from a *Locked method on the same receiver, or Lock/RLock the receiver's mutex first)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScope(pass, fd, fd.Body)
		}
	}
	return nil
}

// lockEvent is one mutex transition on the straight-line body of a
// scope: a Lock/RLock (locked=true) or Unlock/RUnlock (locked=false)
// on a mutex rooted at the object root.
type lockEvent struct {
	pos    token.Pos
	locked bool
	root   types.Object
}

// checkScope analyzes one function body. fn is the owning *ast.FuncDecl
// or *ast.FuncLit; nested literals are recursed into as fresh scopes
// and excluded from this one.
func checkScope(pass *analysis.Pass, fn ast.Node, body *ast.BlockStmt) {
	events := collectEvents(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkScope(pass, n, n.Body)
			return false
		case *ast.CallExpr:
			checkLockedCall(pass, fn, events, n)
		}
		return true
	})
}

// collectEvents gathers the mutex Lock/Unlock calls in body, skipping
// nested function literals (they run at an unknown time) and deferred
// statements (a deferred Unlock runs at return, not at its source
// position).
func collectEvents(pass *analysis.Pass, body *ast.BlockStmt) []lockEvent {
	var events []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var locked bool
			switch sel.Sel.Name {
			case "Lock", "RLock":
				locked = true
			case "Unlock", "RUnlock":
				locked = false
			default:
				return true
			}
			if !isSyncMethod(pass, sel.Sel) {
				return true
			}
			if root := rootObject(pass, sel.X); root != nil {
				events = append(events, lockEvent{pos: n.Pos(), locked: locked, root: root})
			}
		}
		return true
	})
	return events
}

// checkLockedCall reports call if it invokes a *Locked function
// without a justification.
func checkLockedCall(pass *analysis.Pass, fn ast.Node, events []lockEvent, call *ast.CallExpr) {
	var (
		name     string       // callee name
		callee   types.Object // callee object
		recvExpr ast.Expr     // receiver expression at the call site, if a method call
	)
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		callee = pass.TypesInfo.Uses[fun.Sel]
		recvExpr = fun.X
	case *ast.Ident:
		name = fun.Name
		callee = pass.TypesInfo.Uses[fun]
	default:
		return
	}
	if !strings.HasSuffix(name, "Locked") {
		return
	}
	fnObj, _ := callee.(*types.Func)
	if fnObj == nil {
		return // conversion or non-function; not ours
	}

	// Rule (a): the caller is itself a *Locked method on the same
	// receiver type (or a *Locked plain function calling another plain
	// function) — the lock obligation is the caller's caller's problem.
	if fd, ok := fn.(*ast.FuncDecl); ok && strings.HasSuffix(fd.Name.Name, "Locked") {
		calleeRecv := receiverNamed(fnObj)
		callerRecv := namedOfFuncDecl(pass, fd)
		if calleeRecv == nil || calleeRecv == callerRecv {
			return
		}
	}

	// Rule (b): the scope acquired the receiver's mutex before this
	// call and has not released it since.
	var root types.Object
	if recvExpr != nil {
		root = rootObject(pass, recvExpr)
	}
	if root != nil {
		held := false
		for _, e := range events {
			if e.pos >= call.Pos() {
				break
			}
			if e.root == root {
				held = e.locked
			}
		}
		if held {
			return
		}
	}

	pass.Reportf(call.Pos(),
		"call to %s without holding the receiver's lock: acquire the mutex first or call from a *Locked method on the same receiver",
		name)
}

// isSyncMethod reports whether sel resolves to a method declared in
// package sync (Mutex/RWMutex Lock, RLock, Unlock, RUnlock and their
// promotions through embedding).
func isSyncMethod(pass *analysis.Pass, sel *ast.Ident) bool {
	fn, _ := pass.TypesInfo.Uses[sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return fn.Pkg().Path() == "sync" && sig != nil && sig.Recv() != nil
}

// rootObject resolves the base identifier of a selector chain
// (p, p.mu, ix.st.mu -> p, p, ix) to its object, or nil when the chain
// is rooted in something unnamable (a call result, an index
// expression).
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// receiverNamed returns the named type of fn's receiver, or nil for a
// plain function.
func receiverNamed(fn *types.Func) *types.TypeName {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// namedOfFuncDecl returns the named receiver type of a declared
// method, or nil for a plain function.
func namedOfFuncDecl(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	return receiverNamed(fn)
}

// namedOf unwraps pointers to the defining TypeName.
func namedOf(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}
