package lockedcall_test

import (
	"testing"

	"elsi/internal/analysis/analysistest"
	"elsi/internal/analysis/lockedcall"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockedcall.Analyzer, "a")
}
