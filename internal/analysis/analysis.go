// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface this repository needs for its
// house-rule linters. The container this project builds in has no
// module proxy access, so the real x/tools module cannot be vendored;
// everything here is built on the standard library only (go/ast,
// go/types, go/importer and the go command for package listing).
//
// The shape mirrors x/tools deliberately: an Analyzer owns a Run
// function that receives a Pass (one type-checked package) and reports
// Diagnostics. Should the repository ever gain network access, the
// analyzers in the subpackages port to the real framework by changing
// only their import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name is the identifier used on
// the command line and in //lint:ignore directives; Doc is shown by
// `elsivet -list`.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the module-wide directive store (//elsi:noalloc,
	// //elsi:lockorder), built from every loaded package before any
	// analyzer runs. Never nil when driven by Run or analysistest.
	Facts *Facts

	// Report delivers a diagnostic to the driver. Analyzers normally
	// use Reportf instead.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding. End and SuggestedFixes are optional.
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos
	Message        string
	SuggestedFixes []SuggestedFix
}

// SuggestedFix describes a remediation. The multichecker prints the
// message; TextEdits carry machine-applicable replacements for tools
// that want them.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
