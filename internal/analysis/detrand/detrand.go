// Package detrand flags nondeterministic randomness. Reproducing the
// paper's figures (and comparing learned indexes fairly at all — see
// "Evaluating Learned Spatial Indexes") requires every random stream
// to be a seeded rand.New(rand.NewSource(cfg.Seed)), the convention
// internal/scorer and internal/nn established. Three patterns break
// that and are reported:
//
//   - rand.Seed: reseeds the process-global source underneath every
//     other user of it;
//   - calls to the package-level convenience functions (rand.Intn,
//     rand.Float64, rand.Shuffle, ...), which draw from the global
//     source and therefore from an unknown seed;
//   - time-derived seeds (time.Now inside the arguments of a math/rand
//     call), which make every run a different run.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"elsi/internal/analysis"
)

// Analyzer is the detrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "randomness must be deterministic: no global math/rand source, no rand.Seed, no time-derived seeds",
	Run:  run,
}

// constructors are the package-level math/rand functions that do not
// draw from the global source and are therefore allowed.
var constructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	// seen deduplicates time.Now reports: a seed like
	// rand.New(rand.NewSource(time.Now().UnixNano())) places the same
	// time.Now inside the argument lists of two math/rand calls.
	seen := make(map[token.Pos]bool)
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := randPkgFunc(pass, call.Fun)
			if fn == nil {
				return true
			}
			switch {
			case fn.Name() == "Seed":
				pass.Reportf(call.Pos(),
					"rand.Seed reseeds the process-global source; use a local rand.New(rand.NewSource(seed)) instead")
			case !constructors[fn.Name()]:
				pass.Reportf(call.Pos(),
					"rand.%s draws from the global source with an unknown seed; use a seeded *rand.Rand (rand.New(rand.NewSource(cfg.Seed)))",
					fn.Name())
			}
			// Constructors and Seed alike must not take their seed from
			// the clock.
			for _, arg := range call.Args {
				reportTimeSeed(pass, arg, seen)
			}
			return true
		})
	}
	return nil
}

// randPkgFunc resolves fun to a package-level function of math/rand or
// math/rand/v2, or nil.
func randPkgFunc(pass *analysis.Pass, fun ast.Expr) *types.Func {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return nil
	}
	if sig, _ := fn.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
		return nil
	}
	return fn
}

// reportTimeSeed reports any time.Now call inside a seed expression.
func reportTimeSeed(pass *analysis.Pass, arg ast.Expr, seen map[token.Pos]bool) {
	ast.Inspect(arg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" && !seen[call.Pos()] {
			seen[call.Pos()] = true
			pass.Reportf(call.Pos(),
				"time-derived seed makes every run different; derive the seed from configuration (cfg.Seed)")
		}
		return true
	})
}
