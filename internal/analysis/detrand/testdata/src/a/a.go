// Fixture for the detrand analyzer.
package a

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want `rand.Intn draws from the global source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the global source`
}

func reseed() {
	rand.Seed(42) // want `rand.Seed reseeds the process-global source`
}

func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time-derived seed makes every run different`
}

// The repo convention: a locally seeded source. Not flagged.
func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Methods on a *rand.Rand are fine wherever the rand came from.
func goodUse(rng *rand.Rand) int { return rng.Intn(3) }

// time.Now outside a math/rand argument list is not a seed.
func clock() time.Time { return time.Now() }
