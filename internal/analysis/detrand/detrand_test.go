package detrand_test

import (
	"testing"

	"elsi/internal/analysis/analysistest"
	"elsi/internal/analysis/detrand"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrand.Analyzer, "a")
}
