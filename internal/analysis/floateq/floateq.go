// Package floateq flags == and != between floating-point operands.
// The ELSI error-bound machinery (Sec. V) and the lambda sweeps of
// Figs. 9/11/13 assume key and coordinate comparisons are either
// tolerance-based or deliberately bit-exact; a bare float equality is
// almost always an accident that works until a key passes through one
// more model evaluation than it did yesterday. Where bit-exact
// comparison is intended, make it explicit — compare
// math.Float64bits, or carry a //lint:ignore floateq directive with
// the justification.
//
// Comparisons of struct values (geo.Point identity matching in the
// delete paths) are not flagged: struct equality is the documented
// bit-exact identity idiom of this codebase.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"elsi/internal/analysis"
)

// Analyzer is the floateq analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "== and != on floating-point values must be replaced by an epsilon test or an explicit bit comparison",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(pass, be.X) || isFloat(pass, be.Y) {
				pass.Reportf(be.OpPos,
					"floating-point %s comparison: use an epsilon test, math.Float64bits, or //lint:ignore floateq with a reason",
					be.Op)
			}
			return true
		})
	}
	return nil
}

// isFloat reports whether e has floating-point type (float32/float64
// or a named type over them).
func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
