// Fixture for the floateq analyzer.
package a

func guard(lo, hi float64) bool {
	return hi == lo // want `floating-point == comparison`
}

func ne(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

type mappedKey float64

// Named types over floats are still floats.
func keys(a, b mappedKey) bool {
	return a == b // want `floating-point == comparison`
}

type point struct{ x, y float64 }

// Struct identity comparison is the documented bit-exact idiom of the
// delete paths: not flagged.
func same(p, q point) bool { return p == q }

// Integers are fine.
func ints(a, b int) bool { return a == b }

// Ordered comparisons are fine.
func lt(a, b float64) bool { return a < b }

// The escape hatch, as internal/floats uses it: suppressed, no want.
func exact(a, b float64) bool {
	//lint:ignore floateq fixture exercises the escape hatch
	return a == b
}
