package floateq_test

import (
	"testing"

	"elsi/internal/analysis/analysistest"
	"elsi/internal/analysis/floateq"
)

func Test(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floateq.Analyzer, "a")
}
