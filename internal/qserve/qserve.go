// Package qserve is the batched parallel query engine: it shards
// batches of point, window, and kNN queries across workers and writes
// each answer at the input position of its query, so the output order
// is the input order and the results are identical for every worker
// count (including 1). Each worker reuses the caller-provided result
// buffers in place — with append-capable sources (every index family
// and the rebuild processor) a warmed-up batch performs no per-query
// allocations.
//
// The engine adds no synchronization of its own: queries within a
// batch run concurrently against the source, which must therefore be
// safe for concurrent readers. All in-repo indices are, and
// rebuild.Processor serializes each query against concurrent updates
// and background rebuilds with its own read lock — so each query in a
// batch sees a consistent snapshot, though a concurrent writer may
// advance the state between two queries of the same batch (exactly as
// it may between two serial queries).
package qserve

import (
	"elsi/internal/geo"
	"elsi/internal/parallel"
)

// Source is the queryable surface the engine serves. Every index
// family and rebuild.Processor implement it.
type Source interface {
	PointQuery(p geo.Point) bool
	WindowQuery(win geo.Rect) []geo.Point
	KNN(q geo.Point, k int) []geo.Point
}

// windowAppender and knnAppender mirror the index package's appender
// interfaces; declared locally so qserve serves rebuild.Processor (not
// an index.Index) through the same zero-allocation fast paths.
type windowAppender interface {
	WindowQueryAppend(win geo.Rect, out []geo.Point) []geo.Point
}

type knnAppender interface {
	KNNAppend(q geo.Point, k int, out []geo.Point) []geo.Point
}

// Engine shards query batches over a fixed source.
type Engine struct {
	src     Source
	wa      windowAppender // nil when src has no append path
	ka      knnAppender    // nil when src has no append path
	workers int
}

// New returns an engine over src with the given worker bound
// (0 = GOMAXPROCS, 1 = serial). Results are identical for every
// worker count.
func New(src Source, workers int) *Engine {
	e := &Engine{src: src, workers: workers}
	e.wa, _ = src.(windowAppender)
	e.ka, _ = src.(knnAppender)
	return e
}

// shard splits [0, n) into one contiguous chunk per worker and runs
// fn over the chunks concurrently. Unlike parallel.For it has no
// minimum chunk size: query batches are worth sharding at far smaller
// sizes than the build pipeline's array passes, because each element
// is a full index probe rather than a few float operations.
func (e *Engine) shard(n int, fn func(lo, hi int)) {
	w := parallel.Resolve(e.workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	fns := make([]func(), w)
	for c := 0; c < w; c++ {
		lo, hi := c*n/w, (c+1)*n/w
		fns[c] = func() { fn(lo, hi) }
	}
	parallel.Do(fns...)
}

// PointBatch answers pts[i] into out[i], growing out to len(pts) and
// returning it. A caller-reused out makes the batch allocation-free.
func (e *Engine) PointBatch(pts []geo.Point, out []bool) []bool {
	out = GrowBools(out, len(pts))
	e.shard(len(pts), func(lo, hi int) { e.pointSpan(pts, out, lo, hi) })
	return out
}

// pointSpan answers pts[lo:hi] into out[lo:hi] — the per-worker kernel
// of PointBatch. All per-query work lives here so the enforced no-
// allocation surface covers everything that runs len(batch) times; the
// shard closure above it runs once per worker.
//
//elsi:noalloc
func (e *Engine) pointSpan(pts []geo.Point, out []bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		out[i] = e.src.PointQuery(pts[i])
	}
}

// WindowBatch answers wins[i] into out[i], reusing each out[i]'s
// backing array, growing out to len(wins), and returning it. The
// answers match serial WindowQuery calls element for element.
func (e *Engine) WindowBatch(wins []geo.Rect, out [][]geo.Point) [][]geo.Point {
	out = GrowSlices(out, len(wins))
	e.shard(len(wins), func(lo, hi int) { e.windowSpan(wins, out, lo, hi) })
	return out
}

// windowSpan is WindowBatch's per-worker kernel.
//
//elsi:noalloc
func (e *Engine) windowSpan(wins []geo.Rect, out [][]geo.Point, lo, hi int) {
	for i := lo; i < hi; i++ {
		if e.wa != nil {
			out[i] = e.wa.WindowQueryAppend(wins[i], out[i][:0])
		} else {
			out[i] = append(out[i][:0], e.src.WindowQuery(wins[i])...)
		}
	}
}

// KNNBatch answers the k nearest neighbors of qs[i] into out[i],
// reusing each out[i]'s backing array, growing out to len(qs), and
// returning it. The answers match serial KNN calls element for
// element.
func (e *Engine) KNNBatch(qs []geo.Point, k int, out [][]geo.Point) [][]geo.Point {
	out = GrowSlices(out, len(qs))
	e.shard(len(qs), func(lo, hi int) { e.knnSpan(qs, k, nil, out, lo, hi) })
	return out
}

// KNNVarBatch is KNNBatch with a per-query k: it answers the ks[i]
// nearest neighbors of qs[i] into out[i]. len(ks) must equal len(qs).
// A non-positive ks[i] yields an empty answer, exactly like the serial
// paths. The serving layer funnels concurrently arriving kNN requests
// — which carry their own k each — through this entry point.
func (e *Engine) KNNVarBatch(qs []geo.Point, ks []int, out [][]geo.Point) [][]geo.Point {
	if len(ks) != len(qs) {
		panic("qserve: KNNVarBatch len(ks) != len(qs)")
	}
	out = GrowSlices(out, len(qs))
	e.shard(len(qs), func(lo, hi int) { e.knnSpan(qs, 0, ks, out, lo, hi) })
	return out
}

// knnSpan is the per-worker kernel shared by KNNBatch and KNNVarBatch:
// a nil ks means every query uses the fixed k, otherwise ks[i] wins.
//
//elsi:noalloc
func (e *Engine) knnSpan(qs []geo.Point, k int, ks []int, out [][]geo.Point, lo, hi int) {
	for i := lo; i < hi; i++ {
		ki := k
		if ks != nil {
			ki = ks[i]
		}
		if e.ka != nil {
			out[i] = e.ka.KNNAppend(qs[i], ki, out[i][:0])
		} else {
			out[i] = append(out[i][:0], e.src.KNN(qs[i], ki)...)
		}
	}
}

// GrowBools returns out resized to n, reallocating only when the
// capacity is short.
func GrowBools(out []bool, n int) []bool {
	if cap(out) < n {
		next := make([]bool, n)
		copy(next, out)
		return next
	}
	return out[:n]
}

// GrowSlices returns out resized to n, keeping the per-element result
// buffers already allocated in earlier batches.
func GrowSlices(out [][]geo.Point, n int) [][]geo.Point {
	if cap(out) < n {
		next := make([][]geo.Point, n)
		copy(next, out)
		return next
	}
	return out[:n]
}
