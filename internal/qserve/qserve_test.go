package qserve

import (
	"math/rand"
	"sync"
	"testing"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/grid"
	"elsi/internal/index"
	"elsi/internal/kdb"
	"elsi/internal/rebuild"
	"elsi/internal/rmi"
	"elsi/internal/rtree"
	"elsi/internal/zm"
)

func testQueries(pts []geo.Point, seed int64) (probes []geo.Point, wins []geo.Rect, knn []geo.Point) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 60; i++ {
		probes = append(probes, pts[rng.Intn(len(pts))])
		probes = append(probes, geo.Point{X: rng.Float64()*2 + 1.5, Y: rng.Float64()})
		c := pts[rng.Intn(len(pts))]
		half := 0.005 + rng.Float64()*0.05
		wins = append(wins, geo.Rect{MinX: c.X - half, MinY: c.Y - half, MaxX: c.X + half, MaxY: c.Y + half})
		knn = append(knn, geo.Point{X: rng.Float64(), Y: rng.Float64()})
	}
	return probes, wins, knn
}

func builtSources(t *testing.T, pts []geo.Point) map[string]Source {
	t.Helper()
	builder := func() base.ModelBuilder {
		return &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)}
	}
	srcs := map[string]Source{
		"BruteForce": index.NewBruteForce(),
		"ZM":         zm.New(zm.Config{Space: geo.UnitRect, Builder: builder(), Fanout: 4}),
		"Grid":       grid.New(geo.UnitRect),
		"KDB":        kdb.New(geo.UnitRect),
		"HRR":        rtree.NewHRR(geo.UnitRect),
	}
	for name, s := range srcs {
		if err := s.(index.Index).Build(pts); err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
	}
	return srcs
}

func assertEqualResults(t *testing.T, name string, got [][]geo.Point, want [][]geo.Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d batched answers, want %d", name, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: query %d: %d points, want %d", name, i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: query %d result %d = %v, want %v", name, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestBatchMatchesSerial asserts that for every index family and every
// worker count the batched engine returns exactly the serial answers,
// in input order.
func TestBatchMatchesSerial(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 3000, 17)
	probes, wins, knn := testQueries(pts, 18)
	for name, src := range builtSources(t, pts) {
		wantPoint := make([]bool, len(probes))
		for i, p := range probes {
			wantPoint[i] = src.PointQuery(p)
		}
		wantWin := make([][]geo.Point, len(wins))
		for i, w := range wins {
			wantWin[i] = src.WindowQuery(w)
		}
		wantKNN := make([][]geo.Point, len(knn))
		for i, q := range knn {
			wantKNN[i] = src.KNN(q, 10)
		}
		for _, workers := range []int{1, 4, 13} {
			e := New(src, workers)
			gotPoint := e.PointBatch(probes, nil)
			for i := range gotPoint {
				if gotPoint[i] != wantPoint[i] {
					t.Fatalf("%s workers=%d: PointBatch[%d] = %v, want %v", name, workers, i, gotPoint[i], wantPoint[i])
				}
			}
			assertEqualResults(t, name, e.WindowBatch(wins, nil), wantWin)
			assertEqualResults(t, name, e.KNNBatch(knn, 10, nil), wantKNN)
		}
	}
}

// TestBatchBufferReuse asserts a second batch through the same buffers
// returns the same answers: reuse must not leak earlier results.
func TestBatchBufferReuse(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 19)
	_, wins, knn := testQueries(pts, 20)
	for name, src := range builtSources(t, pts) {
		e := New(src, 4)
		first := e.WindowBatch(wins, nil)
		want := make([][]geo.Point, len(first))
		for i := range first {
			want[i] = append([]geo.Point(nil), first[i]...)
		}
		assertEqualResults(t, name, e.WindowBatch(wins, first), want)
		kfirst := e.KNNBatch(knn, 7, nil)
		kwant := make([][]geo.Point, len(kfirst))
		for i := range kfirst {
			kwant[i] = append([]geo.Point(nil), kfirst[i]...)
		}
		assertEqualResults(t, name, e.KNNBatch(knn, 7, kfirst), kwant)
	}
}

// TestBatchMatchesBruteForce cross-checks every exact family's batched
// window answers against the brute-force reference as multisets.
func TestBatchMatchesBruteForce(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Skewed, 2500, 21)
	_, wins, _ := testQueries(pts, 22)
	bf := index.NewBruteForce()
	if err := bf.Build(pts); err != nil {
		t.Fatal(err)
	}
	for name, src := range builtSources(t, pts) {
		e := New(src, 0)
		got := e.WindowBatch(wins, nil)
		for i, w := range wins {
			want := bf.WindowQuery(w)
			if r := index.Recall(got[i], want); r < 1 {
				t.Fatalf("%s: window %d recall %.3f < 1", name, i, r)
			}
			if len(got[i]) != len(want) {
				t.Fatalf("%s: window %d: %d results, want %d", name, i, len(got[i]), len(want))
			}
		}
	}
}

// gatedIndex blocks Build until its gate closes, pinning a background
// rebuild in flight.
type gatedIndex struct {
	index.BruteForce
	gate chan struct{}
}

func (g *gatedIndex) Build(pts []geo.Point) error {
	if g.gate != nil {
		<-g.gate
	}
	return g.BruteForce.Build(pts)
}

// TestBatchThroughProcessorDuringRebuild drives the engine against a
// rebuild.Processor while a background rebuild is held in flight, and
// again after it completes: batched answers must equal the serial
// processor answers in both states.
func TestBatchThroughProcessorDuringRebuild(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 23)
	gate := make(chan struct{})
	p, err := rebuild.NewProcessor(&gatedIndex{}, nil, pts, func(pt geo.Point) float64 { return pt.X }, 4)
	if err != nil {
		t.Fatal(err)
	}
	p.Factory = func() rebuild.Rebuildable { return &gatedIndex{gate: gate} }
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 300; i++ {
		p.Insert(geo.Point{X: rng.Float64(), Y: rng.Float64()})
	}
	p.Rebuild() // background, blocked on the gate
	if !p.Rebuilding() {
		t.Fatal("rebuild not in flight")
	}
	// more updates land in the overlay while the snapshot is frozen
	for i := 0; i < 100; i++ {
		p.Insert(geo.Point{X: rng.Float64(), Y: rng.Float64()})
		p.Delete(pts[rng.Intn(len(pts))])
	}
	probes, wins, knn := testQueries(pts, 25)
	check := func(stage string) {
		e := New(p, 4)
		gotWin := e.WindowBatch(wins, nil)
		for i, w := range wins {
			want := p.WindowQuery(w)
			if len(gotWin[i]) != len(want) {
				t.Fatalf("%s: window %d: %d results, want %d", stage, i, len(gotWin[i]), len(want))
			}
			for j := range want {
				if gotWin[i][j] != want[j] {
					t.Fatalf("%s: window %d result %d mismatch", stage, i, j)
				}
			}
		}
		gotPoint := e.PointBatch(probes, nil)
		for i, pr := range probes {
			if gotPoint[i] != p.PointQuery(pr) {
				t.Fatalf("%s: point %d mismatch", stage, i)
			}
		}
		gotKNN := e.KNNBatch(knn, 5, nil)
		for i, q := range knn {
			want := p.KNN(q, 5)
			if len(gotKNN[i]) != len(want) {
				t.Fatalf("%s: knn %d: %d results, want %d", stage, i, len(gotKNN[i]), len(want))
			}
			for j := range want {
				if gotKNN[i][j] != want[j] {
					t.Fatalf("%s: knn %d result %d mismatch", stage, i, j)
				}
			}
		}
	}
	check("during rebuild")
	close(gate)
	p.WaitRebuild()
	check("after rebuild")
}

// TestBatchConcurrentWithUpdates races batched queries against live
// insertions through the processor — run under -race this is the
// engine's concurrency safety net; every window answer must still lie
// inside its window.
func TestBatchConcurrentWithUpdates(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 26)
	p, err := rebuild.NewProcessor(&gatedIndex{}, nil, pts, func(pt geo.Point) float64 { return pt.X }, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	_, wins, knn := testQueries(pts, 27)
	e := New(p, 4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(28))
		// cap the write load so the inserter contends with the readers
		// without starving them for the whole test
		for n := 0; n < 2000; n++ {
			select {
			case <-stop:
				return
			default:
				p.Insert(geo.Point{X: rng.Float64(), Y: rng.Float64()})
			}
		}
	}()
	var out [][]geo.Point
	for round := 0; round < 8; round++ {
		out = e.WindowBatch(wins, out)
		for i, w := range wins {
			for _, pt := range out[i] {
				if !w.Contains(pt) {
					t.Errorf("round %d: window %d returned outside point %v", round, i, pt)
				}
			}
		}
		e.KNNBatch(knn, 5, nil)
	}
	close(stop)
	wg.Wait()
}
