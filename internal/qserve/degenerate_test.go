package qserve

import (
	"math"
	"testing"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/lisa"
	"elsi/internal/mlindex"
	"elsi/internal/rebuild"
	"elsi/internal/rmi"
	"elsi/internal/rsmi"
)

// learnedSources adds the remaining learned families to the degenerate
// sweeps: the serving layer can be configured with any of them, so a
// hostile window or k must behave identically serial and batched on
// every family a server can host.
func learnedSources(t *testing.T, pts []geo.Point) map[string]Source {
	t.Helper()
	builder := func() base.ModelBuilder {
		return &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)}
	}
	srcs := map[string]Source{
		"MLI":  mlindex.New(mlindex.Config{Space: geo.UnitRect, Builder: builder(), Refs: 16, Fanout: 4, Seed: 1}),
		"LISA": lisa.New(lisa.Config{Space: geo.UnitRect, Builder: builder()}),
		"RSMI": rsmi.New(rsmi.Config{Space: geo.UnitRect, Builder: builder(), Fanout: 8, LeafCap: 256}),
	}
	for name, s := range srcs {
		if err := s.(index.Index).Build(pts); err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
	}
	return srcs
}

// allSources merges the base and learned family maps.
func allSources(t *testing.T, pts []geo.Point) map[string]Source {
	t.Helper()
	srcs := builtSources(t, pts)
	for name, s := range learnedSources(t, pts) {
		srcs[name] = s
	}
	return srcs
}

// degenerateWindows are the window shapes a network client can always
// send: inverted on one or both axes, zero-area (a point or a line),
// far outside the data space, and infinite.
func degenerateWindows() []geo.Rect {
	return []geo.Rect{
		{MinX: 0.8, MinY: 0.8, MaxX: 0.2, MaxY: 0.2},          // fully inverted
		{MinX: 0.2, MinY: 0.8, MaxX: 0.8, MaxY: 0.2},          // inverted on y
		{MinX: 0.5, MinY: 0.1, MaxX: 0.5, MaxY: 0.9},          // zero width
		{MinX: 0.25, MinY: 0.25, MaxX: 0.25, MaxY: 0.25},      // zero area
		{MinX: 3, MinY: 3, MaxX: 4, MaxY: 4},                  // outside the space
		{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10},            // covers everything
		{MinX: math.Inf(-1), MinY: math.Inf(-1), MaxX: math.Inf(1), MaxY: math.Inf(1)},
	}
}

// TestDegenerateWindowsBatchedMatchesSerial drives the degenerate
// windows through every family serially and batched (at several worker
// counts): the answers must match element for element — a window that
// is nonsense serially must be exactly as nonsensical batched.
func TestDegenerateWindowsBatchedMatchesSerial(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 23)
	wins := degenerateWindows()
	wins = append(wins, geo.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.6}) // one sane window as control
	for name, src := range allSources(t, pts) {
		want := make([][]geo.Point, len(wins))
		for i, w := range wins {
			want[i] = append([]geo.Point(nil), src.WindowQuery(w)...)
		}
		for _, workers := range []int{1, 4} {
			e := New(src, workers)
			got := e.WindowBatch(wins, nil)
			assertEqualResults(t, name, got, want)
		}
	}
}

// TestDegenerateKNNBatchedMatchesSerial covers k <= 0 and k far beyond
// the cardinality through KNNBatch and KNNVarBatch.
func TestDegenerateKNNBatchedMatchesSerial(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 500, 29)
	qs := []geo.Point{{X: 0.5, Y: 0.5}, {X: -3, Y: 7}, {X: 0.1, Y: 0.9}, {X: 2, Y: 2}}
	for name, src := range allSources(t, pts) {
		for _, k := range []int{-5, 0, 1, 3, len(pts), len(pts) + 100} {
			want := make([][]geo.Point, len(qs))
			for i, q := range qs {
				want[i] = append([]geo.Point(nil), src.KNN(q, k)...)
			}
			for _, workers := range []int{1, 4} {
				e := New(src, workers)
				got := e.KNNBatch(qs, k, nil)
				assertEqualResults(t, name, got, want)
			}
		}
	}
}

// TestKNNVarBatchMatchesSerial mixes per-query ks — including zero and
// negative — in one batch and checks each answer against its serial
// counterpart.
func TestKNNVarBatchMatchesSerial(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 500, 31)
	qs := []geo.Point{{X: 0.5, Y: 0.5}, {X: 0.2, Y: 0.8}, {X: 0.9, Y: 0.1}, {X: 0.4, Y: 0.4}, {X: 0, Y: 0}}
	ks := []int{3, 0, -2, 10, 1000}
	for name, src := range allSources(t, pts) {
		want := make([][]geo.Point, len(qs))
		for i, q := range qs {
			want[i] = append([]geo.Point(nil), src.KNN(q, ks[i])...)
		}
		for _, workers := range []int{1, 4} {
			e := New(src, workers)
			got := e.KNNVarBatch(qs, ks, nil)
			assertEqualResults(t, name, got, want)
		}
	}
}

// TestEmptyBatches pins the zero-length batch through all four entry
// points: no panic, zero-length output, reused buffers untouched.
func TestEmptyBatches(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 100, 37)
	for name, src := range allSources(t, pts) {
		e := New(src, 0)
		if got := e.PointBatch(nil, nil); len(got) != 0 {
			t.Errorf("%s: empty PointBatch returned %d answers", name, len(got))
		}
		if got := e.WindowBatch(nil, nil); len(got) != 0 {
			t.Errorf("%s: empty WindowBatch returned %d answers", name, len(got))
		}
		if got := e.KNNBatch(nil, 5, nil); len(got) != 0 {
			t.Errorf("%s: empty KNNBatch returned %d answers", name, len(got))
		}
		if got := e.KNNVarBatch(nil, nil, nil); len(got) != 0 {
			t.Errorf("%s: empty KNNVarBatch returned %d answers", name, len(got))
		}
		// a reused non-empty out must shrink to the batch size
		reuse := make([][]geo.Point, 3)
		if got := e.WindowBatch(nil, reuse); len(got) != 0 {
			t.Errorf("%s: empty WindowBatch with reused out returned %d answers", name, len(got))
		}
	}
}

// TestDegenerateThroughProcessor runs the same degenerate inputs
// against the rebuild processor (the serving layer's source), with
// pending inserts and deletions in the overlay so the layered filter
// paths see the degenerate shapes too.
func TestDegenerateThroughProcessor(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 1000, 41)
	proc, err := rebuild.NewProcessor(index.NewBruteForce(), nil, pts, func(p geo.Point) float64 { return p.X }, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		proc.Delete(pts[i*7])
		proc.Insert(geo.Point{X: float64(i) / 50, Y: 0.01})
	}
	wins := degenerateWindows()
	wantW := make([][]geo.Point, len(wins))
	for i, w := range wins {
		wantW[i] = append([]geo.Point(nil), proc.WindowQuery(w)...)
	}
	qs := []geo.Point{{X: 0.5, Y: 0.5}, {X: -1, Y: -1}}
	ks := []int{-1, 0}
	wantK := make([][]geo.Point, len(qs))
	for i, q := range qs {
		wantK[i] = append([]geo.Point(nil), proc.KNN(q, ks[i])...)
	}
	for _, workers := range []int{1, 4} {
		e := New(proc, workers)
		assertEqualResults(t, "Processor/window", e.WindowBatch(wins, nil), wantW)
		assertEqualResults(t, "Processor/knn", e.KNNVarBatch(qs, ks, nil), wantK)
		if got := e.PointBatch(nil, nil); len(got) != 0 {
			t.Errorf("Processor: empty PointBatch returned %d answers", len(got))
		}
	}
}
