package zm

import (
	"fmt"

	"elsi/internal/base"
	"elsi/internal/geo"
	"elsi/internal/rmi"
	"elsi/internal/snapshot"
	"elsi/internal/store"
)

// stateVersion is the on-disk version of the ZM state encoding.
const stateVersion = 1

// StateAppend implements snapshot.Stater: the sorted key/point columns
// plus the trained model(s). Config (space, builder, fanout) is not
// serialized — a restored index must be constructed with the same
// Config before RestoreState.
func (ix *Index) StateAppend(b []byte) ([]byte, error) {
	b = snapshot.AppendU8(b, stateVersion)
	built := ix.st != nil
	b = snapshot.AppendBool(b, built)
	if !built {
		return b, nil
	}
	b = snapshot.AppendF64s(b, ix.st.Keys())
	b = snapshot.AppendPoints(b, ix.st.Points())
	var err error
	if b, err = rmi.AppendStaged(b, ix.staged); err != nil {
		return nil, err
	}
	if b, err = rmi.AppendBounded(b, ix.single); err != nil {
		return nil, err
	}
	return base.AppendBuildStatsSlice(b, ix.stats), nil
}

// RestoreState implements snapshot.Stater. The input is untrusted
// snapshot payload: every structural invariant the query paths rely on
// (parallel columns, ascending keys, exactly one model form) is
// checked before any field is mutated — store.NewSortedColumns panics
// on unsorted keys, so the order check must come first.
func (ix *Index) RestoreState(data []byte) error {
	d := snapshot.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != stateVersion {
		return fmt.Errorf("zm: unsupported state version %d", v)
	}
	built := d.Bool()
	if err := d.Err(); err != nil {
		return fmt.Errorf("zm: decode state: %w", err)
	}
	if !built {
		if err := d.Close(); err != nil {
			return fmt.Errorf("zm: decode state: %w", err)
		}
		ix.st, ix.staged, ix.single, ix.stats = nil, nil, nil, nil
		return nil
	}
	keys := d.F64s()
	pts := d.Points()
	if err := d.Err(); err != nil {
		return fmt.Errorf("zm: decode state: %w", err)
	}
	if err := ValidateColumns(keys, pts); err != nil {
		return fmt.Errorf("zm: %w", err)
	}
	staged, err := rmi.DecodeStaged(d)
	if err != nil {
		return fmt.Errorf("zm: decode staged model: %w", err)
	}
	single, err := rmi.DecodeBounded(d)
	if err != nil {
		return fmt.Errorf("zm: decode single model: %w", err)
	}
	stats := base.DecodeBuildStatsSlice(d)
	if err := d.Close(); err != nil {
		return fmt.Errorf("zm: decode state: %w", err)
	}
	if (staged == nil) == (single == nil) {
		return fmt.Errorf("zm: built state needs exactly one of staged/single model")
	}
	ix.st = store.NewSortedColumns(keys, pts)
	ix.staged = staged
	ix.single = single
	ix.stats = stats
	return nil
}

// ValidateColumns checks the parallel-column invariants a sorted store
// requires: equal lengths and ascending keys. Shared by the learned
// indices' RestoreState implementations because store.NewSortedColumns
// enforces the same invariants by panicking.
func ValidateColumns(keys []float64, pts []geo.Point) error {
	if len(keys) != len(pts) {
		return fmt.Errorf("key/point columns mismatch: %d vs %d", len(keys), len(pts))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return fmt.Errorf("keys not sorted at %d", i)
		}
	}
	return nil
}
