package zm

import (
	"math/rand"
	"testing"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/indextest"
	"elsi/internal/methods"
	"elsi/internal/rmi"
)

func ogBuilder() base.ModelBuilder {
	return &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)}
}

func elsiishBuilder() base.ModelBuilder {
	return &methods.RS{Beta: 200, Trainer: rmi.PiecewiseTrainer(1.0 / 256)}
}

func TestConformanceOG(t *testing.T) {
	for _, name := range dataset.All() {
		t.Run(name, func(t *testing.T) {
			pts := dataset.MustGenerate(name, 3000, 1)
			ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 4})
			indextest.Conformance(t, ix, pts, 42, 1.0, 1.0)
		})
	}
}

func TestConformanceReducedBuilder(t *testing.T) {
	// The central ELSI property: a model trained on a reduced set must
	// preserve exact point and window queries (bounds are over all of D).
	for _, name := range []string{dataset.OSM1, dataset.Skewed} {
		t.Run(name, func(t *testing.T) {
			pts := dataset.MustGenerate(name, 4000, 2)
			ix := New(Config{Space: geo.UnitRect, Builder: elsiishBuilder(), Fanout: 4})
			indextest.Conformance(t, ix, pts, 43, 1.0, 1.0)
		})
	}
}

func TestSingleModelFanout(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 3)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 1})
	indextest.Conformance(t, ix, pts, 44, 1.0, 1.0)
	if len(ix.Stats()) != 1 {
		t.Errorf("single-model build produced %d stats", len(ix.Stats()))
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder()})
	if err := ix.Build(nil); err != nil {
		t.Fatal(err)
	}
	if ix.PointQuery(geo.Point{X: 0.5, Y: 0.5}) {
		t.Error("phantom point")
	}
	if got := ix.WindowQuery(geo.UnitRect); len(got) != 0 {
		t.Errorf("empty window = %d", len(got))
	}
	if got := ix.KNN(geo.Point{}, 5); got != nil {
		t.Errorf("empty KNN = %v", got)
	}
}

func TestStatsPerLeaf(t *testing.T) {
	pts := dataset.MustGenerate(dataset.OSM1, 4000, 4)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 8})
	ix.Build(pts)
	if len(ix.Stats()) != 8 {
		t.Errorf("got %d stats, want 8 (one per leaf model)", len(ix.Stats()))
	}
	for _, s := range ix.Stats() {
		if s.Method != "OG" {
			t.Errorf("stat method %q", s.Method)
		}
	}
}

func TestInvocationCounting(t *testing.T) {
	pts := dataset.MustGenerate(dataset.Uniform, 1000, 5)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 2})
	ix.Build(pts)
	ix.ResetCounters()
	ix.PointQuery(pts[0])
	if ix.ModelInvocations() != 1 {
		t.Errorf("point query used %d invocations, want 1", ix.ModelInvocations())
	}
	if ix.Scanned() == 0 {
		t.Error("no scan work recorded")
	}
	ix.ResetCounters()
	if ix.ModelInvocations() != 0 || ix.Scanned() != 0 {
		t.Error("ResetCounters failed")
	}
}

func TestRebuildReplacesState(t *testing.T) {
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 2})
	a := dataset.MustGenerate(dataset.Uniform, 1000, 6)
	ix.Build(a)
	b := dataset.MustGenerate(dataset.Skewed, 500, 7)
	ix.Build(b)
	if ix.Len() != 500 {
		t.Errorf("Len after rebuild = %d", ix.Len())
	}
	if len(ix.Stats()) != 2 {
		t.Errorf("stats not reset: %d entries", len(ix.Stats()))
	}
	for _, p := range b[:50] {
		if !ix.PointQuery(p) {
			t.Fatal("rebuilt index lost a point")
		}
	}
}

func BenchmarkPointQuery(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 16})
	ix.Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.PointQuery(pts[i%len(pts)])
	}
}

func BenchmarkWindowQuery(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 16})
	ix.Build(pts)
	wins := dataset.WindowsFromData(rand.New(rand.NewSource(2)), pts, geo.UnitRect, 100, 0.0001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.WindowQuery(wins[i%len(wins)])
	}
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	pts := dataset.MustGenerate(dataset.OSM1, 4000, 12)
	seq := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 8, Workers: 1})
	par := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 8, Workers: 4})
	if err := seq.Build(pts); err != nil {
		t.Fatal(err)
	}
	if err := par.Build(pts); err != nil {
		t.Fatal(err)
	}
	if len(par.Stats()) != 8 {
		t.Errorf("parallel build recorded %d stats", len(par.Stats()))
	}
	// identical deterministic trainers per partition => identical query behaviour
	for _, p := range pts[:300] {
		if !par.PointQuery(p) {
			t.Fatalf("parallel-built index lost %v", p)
		}
	}
	win := geo.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.4, MaxY: 0.4}
	a, b := seq.WindowQuery(win), par.WindowQuery(win)
	if len(a) != len(b) {
		t.Errorf("window results differ: %d vs %d", len(a), len(b))
	}
}

func TestBigMinWindowMatchesZRanges(t *testing.T) {
	for _, name := range []string{dataset.OSM1, dataset.NYC, dataset.Uniform} {
		pts := dataset.MustGenerate(name, 4000, 31)
		ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 4})
		if err := ix.Build(pts); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(32))
		for trial := 0; trial < 40; trial++ {
			c := pts[rng.Intn(len(pts))]
			half := 0.002 + rng.Float64()*0.1
			win := geo.Rect{MinX: c.X - half, MinY: c.Y - half, MaxX: c.X + half, MaxY: c.Y + half}
			a := ix.WindowQueryZRanges(win)
			b := ix.WindowQueryBigMin(win)
			if len(a) != len(b) {
				t.Fatalf("%s window %v: zranges %d vs bigmin %d", name, win, len(a), len(b))
			}
		}
	}
}

func TestBigMinConfigSwitch(t *testing.T) {
	pts := dataset.MustGenerate(dataset.OSM1, 2000, 33)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), UseBigMin: true})
	indextest.Conformance(t, ix, pts, 60, 1.0, 1.0)
}

func BenchmarkWindowZRanges(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 16})
	ix.Build(pts)
	wins := dataset.WindowsFromData(rand.New(rand.NewSource(3)), pts, geo.UnitRect, 100, 0.0001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.WindowQueryZRanges(wins[i%len(wins)])
	}
}

func BenchmarkWindowBigMin(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 16})
	ix.Build(pts)
	wins := dataset.WindowsFromData(rand.New(rand.NewSource(3)), pts, geo.UnitRect, 100, 0.0001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.WindowQueryBigMin(wins[i%len(wins)])
	}
}
