package zm

import (
	"math/rand"
	"testing"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/indextest"
	"elsi/internal/rmi"
)

func ffnBuilder() base.ModelBuilder {
	return &base.Direct{Trainer: rmi.FFNTrainer(rmi.FFNConfig{Hidden: 8, Epochs: 8, Seed: 1})}
}

func TestQueryAppendEquivalence(t *testing.T) {
	pts := dataset.UniformPoints(rand.New(rand.NewSource(41)), 3000)
	ix := New(Config{Space: geo.UnitRect, Builder: ogBuilder(), Fanout: 4})
	if err := ix.Build(pts); err != nil {
		t.Fatal(err)
	}
	indextest.AppendEquivalence(t, ix, pts, 42)
}

func TestPointQueryZeroAlloc(t *testing.T) {
	pts := dataset.UniformPoints(rand.New(rand.NewSource(43)), 3000)
	ix := New(Config{Space: geo.UnitRect, Builder: ffnBuilder(), Fanout: 4})
	if err := ix.Build(pts); err != nil {
		t.Fatal(err)
	}
	i := 0
	indextest.AssertZeroAllocs(t, "ZM.PointQuery", func() {
		ix.PointQuery(pts[i%len(pts)])
		i++
	})
}

func TestWindowAndKNNAppendZeroAllocSteadyState(t *testing.T) {
	pts := dataset.UniformPoints(rand.New(rand.NewSource(44)), 3000)
	ix := New(Config{Space: geo.UnitRect, Builder: ffnBuilder(), Fanout: 4})
	if err := ix.Build(pts); err != nil {
		t.Fatal(err)
	}
	win := geo.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.45, MaxY: 0.45}
	var buf []geo.Point
	indextest.AssertZeroAllocs(t, "ZM.WindowQueryAppend", func() {
		buf = ix.WindowQueryAppend(win, buf[:0])
	})
	q := geo.Point{X: 0.5, Y: 0.5}
	indextest.AssertZeroAllocs(t, "ZM.KNNAppend", func() {
		buf = ix.KNNAppend(q, 10, buf[:0])
	})
}
