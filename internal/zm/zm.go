// Package zm implements the Z-order model index (ZM, Wang et al.
// 2019): points are mapped to their Z-curve values, sorted, and an
// RMI-style learned model predicts the storage rank of a key. Point
// queries follow the predict-and-scan paradigm; window queries
// decompose the window into Z-key ranges and resolve each range's
// boundaries with a model-seeded exponential search, so they are
// exact. The model builder is pluggable: the OG builder reproduces ZM
// as published, an ELSI builder reproduces ZM-F.
package zm

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"elsi/internal/base"
	"elsi/internal/curve"
	"elsi/internal/geo"
	"elsi/internal/rmi"
	"elsi/internal/store"
)

// Config controls index construction.
type Config struct {
	// Space is the data-space rectangle.
	Space geo.Rect
	// Builder builds each index model (OG or ELSI).
	Builder base.ModelBuilder
	// Fanout is the number of second-stage models (>= 1). With 1, a
	// single model covers the whole key space.
	Fanout int
	// RootTrainer trains the dispatch model when Fanout > 1; defaults
	// to a piecewise-linear trainer.
	RootTrainer rmi.Trainer
	// MaxZDepth caps the window-query Z-range decomposition depth.
	MaxZDepth int
	// UseBigMin switches window queries from the recursive Z-range
	// decomposition to the Tropf-Herzog BIGMIN skip-scan.
	UseBigMin bool
	// Workers bounds the parallel build stages — key mapping, sorting,
	// and concurrent leaf-model builds (0 = GOMAXPROCS, 1 = serial).
	// Builds are bit-identical across worker counts.
	Workers int
	// BuildTimeout, when positive, bounds each Build call: BuildCtx
	// runs under a context that expires after it, and the build
	// returns the context error. Zero means unbounded.
	BuildTimeout time.Duration
}

// Index is the ZM index.
type Index struct {
	cfg         Config
	st          *store.Sorted
	staged      *rmi.Staged
	single      *rmi.Bounded
	stats       []base.BuildStats
	invocations atomic.Int64
}

// New returns an unbuilt ZM index.
func New(cfg Config) *Index {
	if cfg.Fanout < 1 {
		cfg.Fanout = 1
	}
	if cfg.MaxZDepth <= 0 {
		cfg.MaxZDepth = 8
	}
	if cfg.RootTrainer == nil {
		cfg.RootTrainer = rmi.PiecewiseTrainer(1.0 / 1024)
	}
	return &Index{cfg: cfg}
}

// Name implements index.Index.
func (ix *Index) Name() string { return "ZM" }

// Len implements index.Index.
//
//elsi:noalloc
func (ix *Index) Len() int {
	if ix.st == nil {
		return 0
	}
	return ix.st.Len()
}

// MapKey returns the Z-order key of p — the base index's map()
// function of Algorithm 1.
//
//elsi:noalloc
func (ix *Index) MapKey(p geo.Point) float64 {
	return float64(curve.ZEncode(p, ix.cfg.Space))
}

// Build implements index.Index (Algorithm 1 end to end). It runs
// BuildCtx under a background context, bounded by Config.BuildTimeout
// when set.
func (ix *Index) Build(pts []geo.Point) error {
	return ix.BuildCtx(context.Background(), pts)
}

// BuildCtx is Build with cooperative cancellation: the build aborts
// between model builds when ctx is done (or the per-build timeout
// expires) and returns the context's error. A failed build leaves the
// index unusable; callers must discard it or rebuild.
func (ix *Index) BuildCtx(ctx context.Context, pts []geo.Point) error {
	if err := base.ValidatePoints(pts); err != nil {
		return err
	}
	if ix.cfg.BuildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ix.cfg.BuildTimeout)
		defer cancel()
	}
	d := base.PrepareWorkers(pts, ix.cfg.Space, ix.MapKey, ix.cfg.Workers)
	// The prepared columns are already sorted and owned by this build;
	// the store adopts them without the former per-build entry copy.
	ix.st = store.NewSortedColumns(d.Keys, d.Pts)
	ix.stats = ix.stats[:0]
	if len(pts) == 0 {
		ix.single = &rmi.Bounded{Model: rmi.ConstModel(0), N: 0}
		ix.staged = nil
		return nil
	}
	if ix.cfg.Fanout == 1 {
		m, st, err := base.BuildModelCtx(ctx, ix.cfg.Builder, d)
		if err != nil {
			return err
		}
		ix.single = m
		ix.staged = nil
		ix.stats = append(ix.stats, st)
		return nil
	}
	ix.single = nil
	// Leaf stats are collected keyed by partition start and re-emitted
	// in partition order below: goroutine completion order varies with
	// the worker count, the stats report must not.
	statsByStart := make(map[int]base.BuildStats, ix.cfg.Fanout)
	var mu sync.Mutex
	staged, err := rmi.NewStagedParallelCtx(ctx, d.Keys, ix.cfg.Fanout, ix.cfg.RootTrainer, func(start int, part []float64) (*rmi.Bounded, error) {
		sub := &base.SortedData{
			Pts:   d.Pts[start : start+len(part)],
			Keys:  part,
			Space: d.Space,
			Map:   d.Map,
		}
		m, st, err := base.BuildModelCtx(ctx, ix.cfg.Builder, sub)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		statsByStart[start] = st
		mu.Unlock()
		return m, nil
	}, ix.cfg.Workers)
	if err != nil {
		return err
	}
	ix.staged = staged
	ix.stats = append(ix.stats, statsInOrder(statsByStart, len(d.Keys), ix.cfg.Fanout)...)
	return nil
}

// statsInOrder lays out per-leaf build stats in partition order using
// the equi-count split boundaries (empty partitions build no model and
// record no stats).
func statsInOrder(byStart map[int]base.BuildStats, n, fanout int) []base.BuildStats {
	out := make([]base.BuildStats, 0, len(byStart))
	for i := 0; i < fanout; i++ {
		start, end := i*n/fanout, (i+1)*n/fanout
		if end > start {
			out = append(out, byStart[start])
		}
	}
	return out
}

// searchRange returns the guaranteed scan range for key.
//
//elsi:noalloc
func (ix *Index) searchRange(key float64) (int, int) {
	ix.invocations.Add(1)
	if ix.staged != nil {
		return ix.staged.SearchRangeWide(key)
	}
	return ix.single.SearchRange(key)
}

// predictRank returns the model's best-guess rank for key.
//
//elsi:noalloc
func (ix *Index) predictRank(key float64) int {
	ix.invocations.Add(1)
	if ix.staged != nil {
		lo, hi := ix.staged.SearchRange(key)
		return (lo + hi) / 2
	}
	return ix.single.PredictRank(key)
}

// PointQuery implements index.Index: one model invocation plus a
// bounded scan.
//
//elsi:noalloc
func (ix *Index) PointQuery(p geo.Point) bool {
	if ix.st == nil || ix.st.Len() == 0 {
		return false
	}
	key := ix.MapKey(p)
	lo, hi := ix.searchRange(key)
	return ix.st.FindPoint(lo, hi, p)
}

// WindowQuery implements index.Index (exact): either the recursive
// Z-range decomposition or the BIGMIN skip-scan, per configuration.
func (ix *Index) WindowQuery(win geo.Rect) []geo.Point {
	return ix.WindowQueryAppend(win, nil)
}

// WindowQueryAppend implements index.WindowAppender: matches are
// appended to out, so steady-state window queries allocate only for
// the result slice's own growth.
//
//elsi:noalloc
func (ix *Index) WindowQueryAppend(win geo.Rect, out []geo.Point) []geo.Point {
	if ix.cfg.UseBigMin {
		return ix.WindowQueryBigMinAppend(win, out)
	}
	return ix.WindowQueryZRangesAppend(win, out)
}

// zrangeBufPool recycles Z-range decomposition buffers across window
// queries (any index instance; the ranges are recomputed per call).
var zrangeBufPool = sync.Pool{New: func() interface{} { return new([]curve.KeyRange) }}

// WindowQueryZRanges answers a window query by cutting the window into
// Z-ranges; each range's boundaries are located with a model-seeded
// exponential search (exact).
func (ix *Index) WindowQueryZRanges(win geo.Rect) []geo.Point {
	return ix.WindowQueryZRangesAppend(win, nil)
}

// WindowQueryZRangesAppend is WindowQueryZRanges appending into out,
// with the Z-range buffer drawn from a pool.
//
//elsi:noalloc
func (ix *Index) WindowQueryZRangesAppend(win geo.Rect, out []geo.Point) []geo.Point {
	if ix.st == nil || ix.st.Len() == 0 {
		return out
	}
	buf := zrangeBufPool.Get().(*[]curve.KeyRange)
	rs := curve.ZRangesAppend(win, ix.cfg.Space, ix.cfg.MaxZDepth, (*buf)[:0])
	for _, r := range rs {
		loKey := float64(r.Lo)
		hiKey := float64(r.Hi)
		lo := ix.st.FirstGE(loKey, ix.predictRank(loKey))
		hi := ix.st.FirstGT(hiKey, ix.predictRank(hiKey))
		out = ix.st.CollectWindow(lo, hi, win, out)
	}
	*buf = rs[:0]
	zrangeBufPool.Put(buf)
	return out
}

// WindowQueryBigMin answers a window query with the Tropf-Herzog
// skip-scan (exact): scan the corner-key range in storage order and,
// whenever a stored key's cell falls outside the window's cell box,
// jump directly to BIGMIN — the next key that can be inside — instead
// of filtering through the out-of-window run.
func (ix *Index) WindowQueryBigMin(win geo.Rect) []geo.Point {
	return ix.WindowQueryBigMinAppend(win, nil)
}

// WindowQueryBigMinAppend is WindowQueryBigMin appending into out. The
// skip-scan streams the dense key column directly.
//
//elsi:noalloc
func (ix *Index) WindowQueryBigMinAppend(win geo.Rect, out []geo.Point) []geo.Point {
	if ix.st == nil || ix.st.Len() == 0 {
		return out
	}
	clip := win.Intersection(ix.cfg.Space)
	if clip.IsEmpty() {
		return out
	}
	zmin := curve.ZEncode(geo.Point{X: clip.MinX, Y: clip.MinY}, ix.cfg.Space)
	zmax := curve.ZEncode(geo.Point{X: clip.MaxX, Y: clip.MaxY}, ix.cfg.Space)
	pos := ix.st.FirstGE(float64(zmin), ix.predictRank(float64(zmin)))
	n := ix.st.Len()
	for pos < n {
		key := uint64(ix.st.KeyAt(pos))
		if key > zmax {
			break
		}
		if curve.ZCellInBox(key, zmin, zmax) {
			if p := ix.st.PointAt(pos); win.Contains(p) {
				out = append(out, p)
			}
			pos++
			continue
		}
		next := curve.BigMin(key, zmin, zmax)
		if next > zmax {
			break
		}
		pos = ix.st.FirstGE(float64(next), pos)
	}
	return out
}

// KNN implements index.Index by repeatedly widening a window around q
// until the k-th nearest candidate is closer than the window radius,
// which makes the result exact given the exact window query.
func (ix *Index) KNN(q geo.Point, k int) []geo.Point {
	return WindowKNN(ix, ix.cfg.Space, ix.Len(), q, k)
}

// KNNAppend implements index.KNNAppender through the shared expanding-
// window helper's append path.
//
//elsi:noalloc
func (ix *Index) KNNAppend(q geo.Point, k int, out []geo.Point) []geo.Point {
	return WindowKNNAppend(ix, ix.cfg.Space, ix.Len(), q, k, out)
}

// Stats returns the per-model build statistics of the last Build.
func (ix *Index) Stats() []base.BuildStats { return ix.stats }

// ModelInvocations returns the number of model invocations since
// construction (the M(1) count of the cost analysis).
func (ix *Index) ModelInvocations() int64 { return ix.invocations.Load() }

// Scanned returns the cumulative number of entries scanned.
func (ix *Index) Scanned() int64 {
	if ix.st == nil {
		return 0
	}
	return ix.st.Scanned()
}

// ResetCounters zeroes the invocation and scan counters.
func (ix *Index) ResetCounters() {
	ix.invocations.Store(0)
	if ix.st != nil {
		ix.st.ResetScanned()
	}
}

// windowQuerier is the subset of index behaviour WindowKNN needs.
type windowQuerier interface {
	WindowQuery(win geo.Rect) []geo.Point
}

// WindowAppender is the subset WindowKNNAppend needs (satisfied by the
// learned indices' WindowQueryAppend methods).
type WindowAppender interface {
	WindowQueryAppend(win geo.Rect, out []geo.Point) []geo.Point
}

// WindowKNN is the shared kNN-by-expanding-window strategy the learned
// indices use ("the learned indices use window queries as the basis
// for kNN queries", Section VII-G3). It starts from a radius estimated
// from the data density and doubles it until k in-radius candidates
// are found or the window covers the space.
func WindowKNN(ix windowQuerier, space geo.Rect, n int, q geo.Point, k int) []geo.Point {
	if k <= 0 || n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	// initial radius: expected side enclosing ~4k points under a
	// uniform assumption
	r := math.Sqrt(float64(4*k) / float64(n) * space.Area() / math.Pi)
	if r <= 0 {
		r = 0.01
	}
	maxR := math.Max(space.Width(), space.Height()) * 1.5
	for {
		win := geo.Rect{MinX: q.X - r, MinY: q.Y - r, MaxX: q.X + r, MaxY: q.Y + r}
		cand := ix.WindowQuery(win)
		if len(cand) >= k {
			best := NearestK(cand, q, k)
			if best[k-1].Dist(q) <= r || r >= maxR {
				return best
			}
		} else if r >= maxR {
			return NearestK(cand, q, min(k, len(cand)))
		}
		r *= 2
	}
}

// knnScratch holds one expanding-window search's reusable buffers: the
// window candidates and the selected k-best.
type knnScratch struct {
	cand []geo.Point
	sel  []geo.Point
}

var knnScratchPool = sync.Pool{New: func() interface{} { return new(knnScratch) }}

// WindowKNNAppend is WindowKNN appending the k results to out, with
// all intermediate buffers (window candidates, selection scratch)
// pooled. It returns exactly the same points in the same order as
// WindowKNN.
//
//elsi:noalloc
func WindowKNNAppend(ix WindowAppender, space geo.Rect, n int, q geo.Point, k int, out []geo.Point) []geo.Point {
	if k <= 0 || n == 0 {
		return out
	}
	if k > n {
		k = n
	}
	s := knnScratchPool.Get().(*knnScratch)
	r := math.Sqrt(float64(4*k) / float64(n) * space.Area() / math.Pi)
	if r <= 0 {
		r = 0.01
	}
	maxR := math.Max(space.Width(), space.Height()) * 1.5
	for {
		win := geo.Rect{MinX: q.X - r, MinY: q.Y - r, MaxX: q.X + r, MaxY: q.Y + r}
		s.cand = ix.WindowQueryAppend(win, s.cand[:0])
		if len(s.cand) >= k {
			s.sel = NearestKAppend(s.cand, q, k, s.sel[:0])
			if s.sel[k-1].Dist(q) <= r || r >= maxR {
				out = append(out, s.sel...)
				knnScratchPool.Put(s)
				return out
			}
		} else if r >= maxR {
			s.sel = NearestKAppend(s.cand, q, min(k, len(s.cand)), s.sel[:0])
			out = append(out, s.sel...)
			knnScratchPool.Put(s)
			return out
		}
		r *= 2
	}
}

// pointDist pairs a candidate with its squared distance to the query.
type pointDist struct {
	p geo.Point
	d float64
}

var pdPool = sync.Pool{New: func() interface{} { return new([]pointDist) }}

// NearestK returns the k nearest of cand to q, sorted by distance. It
// is shared by the learned indices' expanding-window query paths.
func NearestK(cand []geo.Point, q geo.Point, k int) []geo.Point {
	if k > len(cand) {
		k = len(cand)
	}
	if k == 0 {
		return nil
	}
	return NearestKAppend(cand, q, k, make([]geo.Point, 0, k))
}

// NearestKAppend is NearestK appending into out, with the selection
// scratch pooled; in steady state it allocates only for out's growth.
//
//elsi:noalloc
func NearestKAppend(cand []geo.Point, q geo.Point, k int, out []geo.Point) []geo.Point {
	if k > len(cand) {
		k = len(cand)
	}
	if k == 0 {
		return out
	}
	// partial selection via the shared KNNScan would import index;
	// select inline instead (candidate sets are small).
	buf := pdPool.Get().(*[]pointDist)
	ps := (*buf)[:0]
	for _, p := range cand {
		ps = append(ps, pointDist{p, p.Dist2(q)})
	}
	for i := 0; i < k; i++ {
		minJ := i
		for j := i + 1; j < len(ps); j++ {
			if ps[j].d < ps[minJ].d {
				minJ = j
			}
		}
		ps[i], ps[minJ] = ps[minJ], ps[i]
	}
	for i := 0; i < k; i++ {
		out = append(out, ps[i].p)
	}
	*buf = ps[:0]
	pdPool.Put(buf)
	return out
}

//elsi:noalloc
func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
