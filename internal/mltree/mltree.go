// Package mltree implements CART decision trees and random forests,
// in regression and classification variants. They are the comparator
// models of Figure 6(b): the paper pits its FFN-based method selector
// against RFR, RFC, DTR, and DTC selectors built from exactly these
// model families.
package mltree

import (
	"math"
	"math/rand"
	"sort"

	"elsi/internal/floats"
)

// Config controls tree induction.
type Config struct {
	// MaxDepth limits tree height (<=0 means unlimited).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 1).
	MinLeaf int
	// FeatureSubset is the number of features considered per split;
	// <=0 means all (forests set sqrt(d) style subsets).
	FeatureSubset int
	// Seed drives feature subsampling.
	Seed int64
}

// Tree is a CART tree for regression (predicting a float) or
// classification (predicting a class id via majority vote).
type Tree struct {
	feature     int
	threshold   float64
	left, right *Tree
	value       float64 // leaf prediction (mean or majority class)
	leaf        bool
}

// TrainRegressor fits a variance-minimizing CART regressor.
func TrainRegressor(X [][]float64, y []float64, cfg Config) *Tree {
	return train(X, y, cfg, false)
}

// TrainClassifier fits a Gini-minimizing CART classifier; y holds
// integer class labels as float64 values.
func TrainClassifier(X [][]float64, y []float64, cfg Config) *Tree {
	return train(X, y, cfg, true)
}

// Predict returns the tree's prediction for x.
func (t *Tree) Predict(x []float64) float64 {
	for !t.leaf {
		if x[t.feature] < t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

// Depth returns the height of the tree.
func (t *Tree) Depth() int {
	if t == nil || t.leaf {
		return 1
	}
	l, r := t.left.Depth(), t.right.Depth()
	if r > l {
		l = r
	}
	return l + 1
}

func train(X [][]float64, y []float64, cfg Config, classify bool) *Tree {
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return grow(X, y, idx, cfg, classify, 0, rng)
}

func grow(X [][]float64, y []float64, idx []int, cfg Config, classify bool, depth int, rng *rand.Rand) *Tree {
	if len(idx) == 0 {
		return &Tree{leaf: true}
	}
	if len(idx) <= cfg.MinLeaf || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) || pure(y, idx) {
		return &Tree{leaf: true, value: leafValue(y, idx, classify)}
	}
	feat, thr, ok := bestSplit(X, y, idx, cfg, classify, rng)
	if !ok {
		return &Tree{leaf: true, value: leafValue(y, idx, classify)}
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][feat] < thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &Tree{leaf: true, value: leafValue(y, idx, classify)}
	}
	return &Tree{
		feature:   feat,
		threshold: thr,
		left:      grow(X, y, li, cfg, classify, depth+1, rng),
		right:     grow(X, y, ri, cfg, classify, depth+1, rng),
	}
}

func pure(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if !floats.Eq(y[i], y[idx[0]]) {
			return false
		}
	}
	return true
}

func leafValue(y []float64, idx []int, classify bool) float64 {
	if classify {
		counts := map[float64]int{}
		for _, i := range idx {
			counts[y[i]]++
		}
		best, bestC := 0.0, -1
		for v, c := range counts {
			if c > bestC || (c == bestC && v < best) {
				best, bestC = v, c
			}
		}
		return best
	}
	sum := 0.0
	for _, i := range idx {
		sum += y[i]
	}
	return sum / float64(len(idx))
}

// bestSplit searches the (sub)set of features for the impurity-
// minimizing threshold.
func bestSplit(X [][]float64, y []float64, idx []int, cfg Config, classify bool, rng *rand.Rand) (feat int, thr float64, ok bool) {
	d := len(X[idx[0]])
	feats := make([]int, d)
	for i := range feats {
		feats[i] = i
	}
	if cfg.FeatureSubset > 0 && cfg.FeatureSubset < d {
		rng.Shuffle(d, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:cfg.FeatureSubset]
	}
	bestScore := math.Inf(1)
	for _, f := range feats {
		pairs := make([]splitPair, len(idx))
		for k, i := range idx {
			pairs[k] = splitPair{X[i][f], y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].x < pairs[b].x })
		// candidate thresholds between distinct consecutive values
		for k := 1; k < len(pairs); k++ {
			if floats.Eq(pairs[k].x, pairs[k-1].x) {
				continue
			}
			t := (pairs[k].x + pairs[k-1].x) / 2
			var score float64
			if classify {
				score = giniSplit(pairs, k)
			} else {
				score = varSplit(pairs, k)
			}
			if score < bestScore {
				bestScore, feat, thr, ok = score, f, t, true
			}
		}
	}
	return feat, thr, ok
}

// splitPair is one (feature value, target) sample during split search.
type splitPair struct{ x, y float64 }

func giniSplit(pairs []splitPair, k int) float64 {
	return gini(pairs[:k])*float64(k) + gini(pairs[k:])*float64(len(pairs)-k)
}

func gini(ps []splitPair) float64 {
	if len(ps) == 0 {
		return 0
	}
	counts := map[float64]int{}
	for _, p := range ps {
		counts[p.y]++
	}
	g := 1.0
	n := float64(len(ps))
	for _, c := range counts {
		f := float64(c) / n
		g -= f * f
	}
	return g
}

func varSplit(pairs []splitPair, k int) float64 {
	return sse(pairs[:k]) + sse(pairs[k:])
}

func sse(ps []splitPair) float64 {
	if len(ps) == 0 {
		return 0
	}
	mean := 0.0
	for _, p := range ps {
		mean += p.y
	}
	mean /= float64(len(ps))
	s := 0.0
	for _, p := range ps {
		d := p.y - mean
		s += d * d
	}
	return s
}

// Forest is a bagged ensemble of CART trees.
type Forest struct {
	trees    []*Tree
	classify bool
}

// ForestConfig controls forest induction.
type ForestConfig struct {
	Trees int
	Tree  Config
	Seed  int64
}

// TrainForestRegressor fits a random-forest regressor (mean of trees).
func TrainForestRegressor(X [][]float64, y []float64, cfg ForestConfig) *Forest {
	return trainForest(X, y, cfg, false)
}

// TrainForestClassifier fits a random-forest classifier (majority
// vote).
func TrainForestClassifier(X [][]float64, y []float64, cfg ForestConfig) *Forest {
	return trainForest(X, y, cfg, true)
}

func trainForest(X [][]float64, y []float64, cfg ForestConfig, classify bool) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 10
	}
	if cfg.Tree.FeatureSubset <= 0 && len(X) > 0 {
		// sqrt(d) features per split, the usual forest default
		cfg.Tree.FeatureSubset = int(math.Sqrt(float64(len(X[0])))) + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{classify: classify}
	n := len(X)
	for t := 0; t < cfg.Trees; t++ {
		// bootstrap sample
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = X[j]
			by[i] = y[j]
		}
		tc := cfg.Tree
		tc.Seed = rng.Int63()
		var tree *Tree
		if classify {
			tree = TrainClassifier(bx, by, tc)
		} else {
			tree = TrainRegressor(bx, by, tc)
		}
		f.trees = append(f.trees, tree)
	}
	return f
}

// Predict returns the ensemble prediction for x.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.trees) == 0 {
		return 0
	}
	if f.classify {
		votes := map[float64]int{}
		for _, t := range f.trees {
			votes[t.Predict(x)]++
		}
		best, bestC := 0.0, -1
		for v, c := range votes {
			if c > bestC || (c == bestC && v < best) {
				best, bestC = v, c
			}
		}
		return best
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.Predict(x)
	}
	return sum / float64(len(f.trees))
}

// Size returns the number of trees in the forest.
func (f *Forest) Size() int { return len(f.trees) }
