package mltree

import (
	"math"
	"math/rand"
	"testing"
)

func TestRegressorFitsStep(t *testing.T) {
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 200
		X = append(X, []float64{x})
		if x < 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 3)
		}
	}
	tr := TrainRegressor(X, y, Config{MaxDepth: 3})
	if got := tr.Predict([]float64{0.2}); math.Abs(got-1) > 0.01 {
		t.Errorf("Predict(0.2) = %v, want 1", got)
	}
	if got := tr.Predict([]float64{0.8}); math.Abs(got-3) > 0.01 {
		t.Errorf("Predict(0.8) = %v, want 3", got)
	}
}

func TestClassifierXOR(t *testing.T) {
	X := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []float64{0, 1, 1, 0}
	// replicate so MinLeaf constraints don't matter
	var XX [][]float64
	var yy []float64
	for i := 0; i < 20; i++ {
		XX = append(XX, X...)
		yy = append(yy, y...)
	}
	tr := TrainClassifier(XX, yy, Config{MaxDepth: 4})
	for i, x := range X {
		if got := tr.Predict(x); got != y[i] {
			t.Errorf("Predict(%v) = %v, want %v", x, got, y[i])
		}
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		x := rng.Float64()
		X = append(X, []float64{x})
		y = append(y, math.Sin(10*x))
	}
	tr := TrainRegressor(X, y, Config{MaxDepth: 3})
	if d := tr.Depth(); d > 4 {
		t.Errorf("Depth = %d with MaxDepth 3", d)
	}
}

func TestPureLeafStopsEarly(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	tr := TrainClassifier(X, y, Config{})
	if !tr.leaf {
		t.Error("constant targets should yield a single leaf")
	}
	if tr.Predict([]float64{2.5}) != 7 {
		t.Errorf("Predict = %v", tr.Predict([]float64{2.5}))
	}
}

func TestEmptyTraining(t *testing.T) {
	tr := TrainRegressor(nil, nil, Config{})
	if got := tr.Predict([]float64{1}); got != 0 {
		t.Errorf("empty-tree Predict = %v", got)
	}
}

func TestForestRegressorBeatsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a, b := rng.Float64(), rng.Float64()
		X = append(X, []float64{a, b})
		y = append(y, 2*a+b)
	}
	f := TrainForestRegressor(X, y, ForestConfig{Trees: 15, Tree: Config{MaxDepth: 8}, Seed: 1})
	if f.Size() != 15 {
		t.Fatalf("Size = %d", f.Size())
	}
	mse := 0.0
	for i := 0; i < 100; i++ {
		a, b := rng.Float64(), rng.Float64()
		d := f.Predict([]float64{a, b}) - (2*a + b)
		mse += d * d
	}
	mse /= 100
	if mse > 0.05 {
		t.Errorf("forest MSE = %v", mse)
	}
}

func TestForestClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a, b := rng.Float64(), rng.Float64()
		X = append(X, []float64{a, b})
		if a+b > 1 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	f := TrainForestClassifier(X, y, ForestConfig{Trees: 15, Tree: Config{MaxDepth: 8}, Seed: 2})
	correct := 0
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		want := 0.0
		if a+b > 1 {
			want = 1
		}
		if f.Predict([]float64{a, b}) == want {
			correct++
		}
	}
	if correct < 180 {
		t.Errorf("forest accuracy %d/200", correct)
	}
}

func TestForestDeterministic(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}}
	y := []float64{1, 1, 1, 2, 2, 2}
	a := TrainForestClassifier(X, y, ForestConfig{Trees: 5, Seed: 7})
	b := TrainForestClassifier(X, y, ForestConfig{Trees: 5, Seed: 7})
	for v := 0.5; v < 6.5; v += 0.5 {
		if a.Predict([]float64{v}) != b.Predict([]float64{v}) {
			t.Fatal("same-seed forests disagree")
		}
	}
}
