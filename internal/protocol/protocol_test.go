package protocol

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"elsi/internal/geo"
)

func sampleRequests() []Request {
	return []Request{
		{Op: OpPoint, Pt: geo.Point{X: 0.25, Y: 0.75}},
		{Op: OpInsert, Pt: geo.Point{X: -1.5, Y: math.SmallestNonzeroFloat64}},
		{Op: OpDelete, Pt: geo.Point{X: math.MaxFloat64, Y: -math.MaxFloat64}},
		{Op: OpWindow, Win: geo.Rect{MinX: 0.1, MinY: 0.2, MaxX: 0.3, MaxY: 0.4}},
		{Op: OpWindow, Win: geo.Rect{MinX: 0.8, MinY: 0.8, MaxX: 0.2, MaxY: 0.2}}, // inverted survives the wire
		{Op: OpKNN, Pt: geo.Point{X: 0.5, Y: 0.5}, K: 10},
		{Op: OpKNN, Pt: geo.Point{}, K: -3}, // negative k survives the wire
		{Op: OpStats},
	}
}

func sampleResponses() []Response {
	return []Response{
		{Status: StatusOK, Kind: KindBool, Bool: true},
		{Status: StatusOK, Kind: KindBool, Bool: false},
		{Status: StatusOK, Kind: KindPoints, Points: []geo.Point{{X: 1, Y: 2}, {X: -3, Y: 4.5}}},
		{Status: StatusOK, Kind: KindPoints, Points: []geo.Point{}},
		{Status: StatusOK, Kind: KindText, Text: `{"Len":42}`},
		{Status: StatusError, Kind: KindText, Text: "boom"},
		{Status: StatusOverloaded, Kind: KindNone},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range sampleRequests() {
		body := AppendRequest(nil, req)
		got, err := DecodeRequest(body)
		if err != nil {
			t.Errorf("op %d: DecodeRequest: %v", req.Op, err)
			continue
		}
		if got != req {
			t.Errorf("op %d: round trip = %+v, want %+v", req.Op, got, req)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for i, resp := range sampleResponses() {
		body := AppendResponse(nil, resp)
		got, err := DecodeResponse(body)
		if err != nil {
			t.Errorf("case %d: DecodeResponse: %v", i, err)
			continue
		}
		if got.Status != resp.Status || got.Kind != resp.Kind || got.Bool != resp.Bool || got.Text != resp.Text {
			t.Errorf("case %d: round trip = %+v, want %+v", i, got, resp)
		}
		if len(got.Points) != len(resp.Points) {
			t.Errorf("case %d: %d points, want %d", i, len(got.Points), len(resp.Points))
			continue
		}
		for j := range got.Points {
			if got.Points[j] != resp.Points[j] {
				t.Errorf("case %d: point %d = %v, want %v", i, j, got.Points[j], resp.Points[j])
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{{}, {1}, bytes.Repeat([]byte{0xab}, 1000)}
	for _, b := range bodies {
		if err := WriteFrame(&buf, b); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range bodies {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestReadFrameHostileInputs pins the defensive paths: an oversize
// length prefix is rejected before any allocation, truncation at
// every boundary is a typed error, and none of it panics.
func TestReadFrameHostileInputs(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0xff} // 4 GiB claimed
	if _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversize prefix: err = %v, want ErrFrameTooLarge", err)
	}
	over := []byte{0x00, 0x10, 0x00, 0x01} // MaxFrame+1
	if _, err := ReadFrame(bytes.NewReader(over)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("MaxFrame+1 prefix: err = %v, want ErrFrameTooLarge", err)
	}
	// truncated at every possible cut of a valid frame
	full := AppendRequest(nil, Request{Op: OpKNN, Pt: geo.Point{X: 1, Y: 2}, K: 5})
	var framed bytes.Buffer
	if err := WriteFrame(&framed, full); err != nil {
		t.Fatal(err)
	}
	wire := framed.Bytes()
	for cut := 1; cut < len(wire); cut++ {
		_, err := ReadFrame(bytes.NewReader(wire[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestWriteFrameRejectsOversizeBody(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestDecodeRequestMalformed tables the malformed bodies a hostile
// client can send: wrong payload sizes, unknown ops, empty frames.
func TestDecodeRequestMalformed(t *testing.T) {
	cases := []struct {
		name string
		body []byte
		want error
	}{
		{"empty body", nil, ErrTruncated},
		{"unknown op", []byte{0xee, 0, 0}, ErrBadOp},
		{"op zero", []byte{0}, ErrBadOp},
		{"point short", append([]byte{OpPoint}, make([]byte, 15)...), ErrBadPayload},
		{"point long", append([]byte{OpPoint}, make([]byte, 17)...), ErrBadPayload},
		{"window short", append([]byte{OpWindow}, make([]byte, 31)...), ErrBadPayload},
		{"knn short", append([]byte{OpKNN}, make([]byte, 16)...), ErrBadPayload},
		{"stats with payload", []byte{OpStats, 1}, ErrBadPayload},
		{"insert empty", []byte{OpInsert}, ErrBadPayload},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.body); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeResponseMalformed(t *testing.T) {
	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"status only", []byte{StatusOK}},
		{"unknown kind", []byte{StatusOK, 0xee}},
		{"unknown status", []byte{0xee, KindNone}},
		{"bool short", []byte{StatusOK, KindBool}},
		{"bool out of range", []byte{StatusOK, KindBool, 2}},
		{"points ragged", append([]byte{StatusOK, KindPoints}, make([]byte, 15)...)},
		{"none with payload", []byte{StatusOK, KindNone, 7}},
	}
	for _, tc := range cases {
		if _, err := DecodeResponse(tc.body); err == nil {
			t.Errorf("%s: DecodeResponse accepted malformed body", tc.name)
		}
	}
}

// FuzzDecodeRequest asserts decode never panics and every accepted
// body re-encodes to exactly the bytes that were decoded (the codec
// is canonical).
func FuzzDecodeRequest(f *testing.F) {
	for _, req := range sampleRequests() {
		f.Add(AppendRequest(nil, req))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body)
		if err != nil {
			return
		}
		if got := AppendRequest(nil, req); !bytes.Equal(got, body) {
			t.Errorf("accepted body is not canonical: % x -> %+v -> % x", body, req, got)
		}
	})
}

// FuzzDecodeResponse asserts decode never panics and accepted bodies
// re-encode canonically.
func FuzzDecodeResponse(f *testing.F) {
	for _, resp := range sampleResponses() {
		f.Add(AppendResponse(nil, resp))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 2, 1})
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := DecodeResponse(body)
		if err != nil {
			return
		}
		if got := AppendResponse(nil, resp); !bytes.Equal(got, body) {
			t.Errorf("accepted body is not canonical: % x -> %+v -> % x", body, resp, got)
		}
	})
}

// FuzzReadFrame asserts the frame reader never panics or allocates
// past MaxFrame on arbitrary byte streams, including multi-frame ones.
func FuzzReadFrame(f *testing.F) {
	var ok bytes.Buffer
	_ = WriteFrame(&ok, []byte{OpStats})
	_ = WriteFrame(&ok, AppendRequest(nil, Request{Op: OpPoint, Pt: geo.Point{X: 1, Y: 2}}))
	f.Add(ok.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, stream []byte) {
		r := bytes.NewReader(stream)
		for i := 0; i < 64; i++ {
			body, err := ReadFrame(r)
			if err != nil {
				if errors.Is(err, ErrTruncated) || errors.Is(err, ErrFrameTooLarge) || err == io.EOF {
					return
				}
				t.Fatalf("unexpected error class: %v", err)
			}
			if len(body) > MaxFrame {
				t.Fatalf("frame body of %d bytes exceeds MaxFrame", len(body))
			}
		}
	})
}
