// Package protocol is the compact binary wire format of the TCP
// serving path: length-prefixed frames carrying one request or one
// response each.
//
// A frame is a big-endian uint32 body length followed by the body.
// Request bodies start with an op byte, response bodies with a status
// byte and a payload-kind byte; all coordinates are IEEE-754 float64
// bits, big-endian. The format is self-describing on both directions,
// so a response decodes without knowing the request that caused it.
//
// Decoding is defensive by construction: the length prefix is capped
// at MaxFrame before any allocation, every payload length is checked
// against its op, and a truncated or trailing-garbage body is a typed
// error — never a panic or an oversized allocation. The fuzz tests
// hold the package to that.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"elsi/internal/geo"
)

// MaxFrame bounds the body length of any frame (1 MiB). A window or
// kNN response larger than this fails server-side with an error
// response, rather than growing without bound.
const MaxFrame = 1 << 20

// Request ops.
const (
	OpPoint  byte = 1 // payload: point (16 bytes)
	OpWindow byte = 2 // payload: rect (32 bytes)
	OpKNN    byte = 3 // payload: point + int32 k (20 bytes)
	OpInsert byte = 4 // payload: point (16 bytes)
	OpDelete byte = 5 // payload: point (16 bytes)
	OpStats  byte = 6 // payload: empty
)

// Response statuses.
const (
	StatusOK         byte = 0
	StatusError      byte = 1 // payload kind KindText: the error message
	StatusOverloaded byte = 2 // server backpressure; retry later
)

// Response payload kinds.
const (
	KindNone   byte = 0 // no payload
	KindBool   byte = 1 // 1 byte, 0 or 1
	KindPoints byte = 2 // n*16 bytes of points
	KindText   byte = 3 // UTF-8 bytes (error message or stats JSON)
)

// Typed decode errors. Handlers check them to distinguish a malformed
// peer from an I/O failure.
var (
	ErrFrameTooLarge = errors.New("protocol: frame exceeds MaxFrame")
	ErrTruncated     = errors.New("protocol: truncated frame")
	ErrBadOp         = errors.New("protocol: unknown op")
	ErrBadPayload    = errors.New("protocol: payload length does not match op")
)

// Request is one decoded client request. Pt doubles as the query
// point (OpPoint, OpKNN) and the update point (OpInsert, OpDelete).
type Request struct {
	Op  byte
	Pt  geo.Point
	Win geo.Rect
	K   int
}

// Response is one decoded server response. Exactly one of Bool,
// Points, Text is meaningful, per Kind.
type Response struct {
	Status byte
	Kind   byte
	Bool   bool
	Points []geo.Point
	Text   string
}

// --- frame I/O ----------------------------------------------------------

// WriteFrame writes body as one length-prefixed frame.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(body)))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame body, enforcing MaxFrame before any
// allocation. io.EOF is returned untouched on a clean end-of-stream
// (no prefix bytes at all); a stream that dies mid-frame returns
// ErrTruncated.
func ReadFrame(r io.Reader) ([]byte, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return body, nil
}

// --- primitives ---------------------------------------------------------

func appendFloat(dst []byte, f float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendPoint(dst []byte, p geo.Point) []byte {
	return appendFloat(appendFloat(dst, p.X), p.Y)
}

func getFloat(b []byte) float64 {
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

func getPoint(b []byte) geo.Point {
	return geo.Point{X: getFloat(b), Y: getFloat(b[8:])}
}

// --- requests -----------------------------------------------------------

// AppendRequest appends req's frame body (without the length prefix)
// to dst and returns it.
func AppendRequest(dst []byte, req Request) []byte {
	dst = append(dst, req.Op)
	switch req.Op {
	case OpPoint, OpInsert, OpDelete:
		dst = appendPoint(dst, req.Pt)
	case OpWindow:
		dst = appendFloat(dst, req.Win.MinX)
		dst = appendFloat(dst, req.Win.MinY)
		dst = appendFloat(dst, req.Win.MaxX)
		dst = appendFloat(dst, req.Win.MaxY)
	case OpKNN:
		dst = appendPoint(dst, req.Pt)
		dst = binary.BigEndian.AppendUint32(dst, uint32(int32(req.K)))
	case OpStats:
		// no payload
	}
	return dst
}

// DecodeRequest decodes one request frame body.
func DecodeRequest(body []byte) (Request, error) {
	if len(body) == 0 {
		return Request{}, ErrTruncated
	}
	req := Request{Op: body[0]}
	payload := body[1:]
	switch req.Op {
	case OpPoint, OpInsert, OpDelete:
		if len(payload) != 16 {
			return Request{}, ErrBadPayload
		}
		req.Pt = getPoint(payload)
	case OpWindow:
		if len(payload) != 32 {
			return Request{}, ErrBadPayload
		}
		req.Win = geo.Rect{
			MinX: getFloat(payload),
			MinY: getFloat(payload[8:]),
			MaxX: getFloat(payload[16:]),
			MaxY: getFloat(payload[24:]),
		}
	case OpKNN:
		if len(payload) != 20 {
			return Request{}, ErrBadPayload
		}
		req.Pt = getPoint(payload)
		req.K = int(int32(binary.BigEndian.Uint32(payload[16:])))
	case OpStats:
		if len(payload) != 0 {
			return Request{}, ErrBadPayload
		}
	default:
		return Request{}, ErrBadOp
	}
	return req, nil
}

// --- responses ----------------------------------------------------------

// AppendResponse appends resp's frame body (without the length
// prefix) to dst and returns it.
func AppendResponse(dst []byte, resp Response) []byte {
	dst = append(dst, resp.Status, resp.Kind)
	switch resp.Kind {
	case KindBool:
		if resp.Bool {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindPoints:
		for _, pt := range resp.Points {
			dst = appendPoint(dst, pt)
		}
	case KindText:
		dst = append(dst, resp.Text...)
	}
	return dst
}

// DecodeResponse decodes one response frame body. The point count of
// a KindPoints payload is derived from the payload length (which the
// frame layer has already capped), so a hostile count can never force
// an allocation beyond MaxFrame.
func DecodeResponse(body []byte) (Response, error) {
	if len(body) < 2 {
		return Response{}, ErrTruncated
	}
	resp := Response{Status: body[0], Kind: body[1]}
	payload := body[2:]
	switch resp.Kind {
	case KindNone:
		if len(payload) != 0 {
			return Response{}, ErrBadPayload
		}
	case KindBool:
		if len(payload) != 1 || payload[0] > 1 {
			return Response{}, ErrBadPayload
		}
		resp.Bool = payload[0] == 1
	case KindPoints:
		if len(payload)%16 != 0 {
			return Response{}, ErrBadPayload
		}
		resp.Points = make([]geo.Point, len(payload)/16)
		for i := range resp.Points {
			resp.Points[i] = getPoint(payload[i*16:])
		}
	case KindText:
		resp.Text = string(payload)
	default:
		return Response{}, ErrBadPayload
	}
	switch resp.Status {
	case StatusOK, StatusError, StatusOverloaded:
	default:
		return Response{}, ErrBadPayload
	}
	return resp, nil
}
