package monitor

import (
	"sync"
	"testing"

	"elsi/internal/geo"
	"elsi/internal/indextest"
)

func unitSpace() geo.Rect {
	return geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
}

func TestCounters(t *testing.T) {
	s := New(unitSpace())
	for i := 0; i < 5; i++ {
		s.RecordPoint(geo.Point{X: 0.5, Y: 0.5})
	}
	s.RecordWindow(geo.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2})
	s.RecordKNN(geo.Point{X: 0.9, Y: 0.9}, 10)
	s.RecordInsert(geo.Point{X: 0.3, Y: 0.3})
	s.RecordInsert(geo.Point{X: 0.3, Y: 0.3})
	s.RecordDelete(geo.Point{X: 0.3, Y: 0.3})

	snap := s.Snapshot()
	if snap.Points != 5 || snap.Windows != 1 || snap.KNNs != 1 || snap.Inserts != 2 || snap.Deletes != 1 {
		t.Fatalf("counters = %+v", snap)
	}
	if got := snap.Reads(); got != 7 {
		t.Errorf("Reads = %d, want 7", got)
	}
	if got := snap.Writes(); got != 3 {
		t.Errorf("Writes = %d, want 3", got)
	}
	if got := snap.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
}

func TestAreaHistogram(t *testing.T) {
	s := New(unitSpace())
	// Area 0.25 of a unit space: frac 2^-2 → bucket 1 boundary. Use a
	// clearly interior fraction instead: 0.1 x 0.1 = 1e-2, -log2 ≈ 6.64
	// → bucket 6.
	s.RecordWindow(geo.Rect{MinX: 0, MinY: 0, MaxX: 0.1, MaxY: 0.1})
	// Degenerate window → last bucket.
	s.RecordWindow(geo.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5})
	// Whole space → bucket 0.
	s.RecordWindow(unitSpace())

	snap := s.Snapshot()
	if snap.WindowArea[6] != 1 {
		t.Errorf("bucket 6 = %d, want 1 (hist %v)", snap.WindowArea[6], snap.WindowArea)
	}
	if snap.WindowArea[AreaBuckets-1] != 1 {
		t.Errorf("last bucket = %d, want 1 (hist %v)", snap.WindowArea[AreaBuckets-1], snap.WindowArea)
	}
	if snap.WindowArea[0] != 1 {
		t.Errorf("bucket 0 = %d, want 1 (hist %v)", snap.WindowArea[0], snap.WindowArea)
	}
}

func TestKHistogram(t *testing.T) {
	s := New(unitSpace())
	q := geo.Point{X: 0.5, Y: 0.5}
	for _, k := range []int{1, 2, 3, 4, 8, 9, 1 << 20} {
		s.RecordKNN(q, k)
	}
	snap := s.Snapshot()
	// Buckets: k=1→0, k=2→1, k∈(2,4]→2, k∈(4,8]→3, k∈(8,16]→4, huge→last.
	want := [KBuckets]int64{0: 1, 1: 1, 2: 2, 3: 1, 4: 1, KBuckets - 1: 1}
	if snap.KHist != want {
		t.Errorf("KHist = %v, want %v", snap.KHist, want)
	}
}

func TestHotCells(t *testing.T) {
	s := New(unitSpace())
	// Hammer one corner, sprinkle the opposite one.
	for i := 0; i < 100; i++ {
		s.RecordPoint(geo.Point{X: 0.01, Y: 0.01})
	}
	s.RecordPoint(geo.Point{X: 0.99, Y: 0.99})

	snap := s.Snapshot()
	if len(snap.Hot) != 2 {
		t.Fatalf("Hot = %v, want 2 cells", snap.Hot)
	}
	if snap.Hot[0].CellX != 0 || snap.Hot[0].CellY != 0 || snap.Hot[0].Count != 100 {
		t.Errorf("hottest = %+v, want cell (0,0) count 100", snap.Hot[0])
	}
	max := (1 << GridOrder) - 1
	if snap.Hot[1].CellX != max || snap.Hot[1].CellY != max {
		t.Errorf("second = %+v, want cell (%d,%d)", snap.Hot[1], max, max)
	}
	if snap.HotShare != 1 {
		t.Errorf("HotShare = %v, want 1 (all traffic in top cells)", snap.HotShare)
	}

	r := CellRect(unitSpace(), snap.Hot[0].CellX, snap.Hot[0].CellY)
	if !r.Contains(geo.Point{X: 0.01, Y: 0.01}) {
		t.Errorf("CellRect %v does not contain the hammered point", r)
	}
}

// TestOutOfSpaceClamped checks that coordinates outside the monitored
// space land in the border cells instead of out-of-range indices.
func TestOutOfSpaceClamped(t *testing.T) {
	s := New(unitSpace())
	s.RecordPoint(geo.Point{X: -5, Y: -5})
	s.RecordPoint(geo.Point{X: 5, Y: 5})
	snap := s.Snapshot()
	if snap.Points != 2 || len(snap.Hot) != 2 {
		t.Fatalf("snap = %+v", snap)
	}
}

func TestSub(t *testing.T) {
	s := New(unitSpace())
	s.RecordPoint(geo.Point{X: 0.1, Y: 0.1})
	s.RecordInsert(geo.Point{X: 0.1, Y: 0.1})
	first := s.Snapshot()

	for i := 0; i < 10; i++ {
		s.RecordPoint(geo.Point{X: 0.9, Y: 0.9})
	}
	d := s.Snapshot().Sub(first)
	if d.Points != 10 || d.Inserts != 0 {
		t.Fatalf("delta = %+v, want 10 points, 0 inserts", d)
	}
	// The delta's hot list must reflect only the new traffic.
	if len(d.Hot) != 1 {
		t.Fatalf("delta Hot = %v, want exactly the new cell", d.Hot)
	}
	if d.Hot[0].Count != 10 {
		t.Errorf("delta hot count = %d, want 10", d.Hot[0].Count)
	}
}

func TestNilSafe(t *testing.T) {
	var s *Stats
	s.RecordPoint(geo.Point{})
	s.RecordWindow(geo.Rect{})
	s.RecordKNN(geo.Point{}, 3)
	s.RecordInsert(geo.Point{})
	s.RecordDelete(geo.Point{})
	if snap := s.Snapshot(); snap.Total() != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

func TestRecordConcurrent(t *testing.T) {
	s := New(unitSpace())
	const G, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := geo.Point{X: float64(g) / G, Y: 0.5}
			for i := 0; i < each; i++ {
				s.RecordPoint(p)
				s.RecordInsert(p)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			s.Snapshot() // racing reader must be safe
		}
	}()
	wg.Wait()
	<-done
	snap := s.Snapshot()
	if snap.Points != G*each || snap.Inserts != G*each {
		t.Fatalf("lost updates: %+v", snap)
	}
}

func TestRecordZeroAllocs(t *testing.T) {
	s := New(unitSpace())
	p := geo.Point{X: 0.25, Y: 0.75}
	win := geo.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.3, MaxY: 0.3}
	indextest.AssertZeroAllocs(t, "monitor.Record*", func() {
		s.RecordPoint(p)
		s.RecordWindow(win)
		s.RecordKNN(p, 8)
		s.RecordInsert(p)
		s.RecordDelete(p)
	})
}
