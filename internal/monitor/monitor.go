// Package monitor collects live workload statistics on the query path.
//
// A monitor.Stats sits next to a rebuild.Processor and is poked once per
// operation: query mix (point/window/kNN), window-area and k histograms,
// insert/delete rates, and a fixed-grid hot-region counter over coarse
// curve cells. Everything is a padded atomic counter — recording is
// lock-free and allocation-free (enforced with //elsi:noalloc) so the
// monitor can ride on the hottest paths without showing up in latency
// histograms.
//
// Readers call Snapshot, which is allowed to allocate; Snapshot.Sub
// yields the delta between two snapshots so consumers (the workload
// adapter, /stats) can reason about traffic windows rather than
// process-lifetime totals.
package monitor

import (
	"math"
	"math/bits"
	"sync/atomic"

	"elsi/internal/curve"
	"elsi/internal/geo"
)

// GridOrder is the resolution of the hot-region grid: the space is cut
// into 2^GridOrder × 2^GridOrder cells addressed by their Z-order key
// (the same interleaving the curve package uses at full precision, so a
// hot cell identifies a contiguous key range of the index). Order 5 is
// 1024 cells — 8 KiB of counters per shard, coarse enough that a skewed
// workload concentrates visibly and fine enough to localise it.
const GridOrder = 5

// GridCells is the number of cells in the hot-region grid.
const GridCells = 1 << (2 * GridOrder)

// AreaBuckets is the size of the window-area histogram. Bucket i holds
// windows whose area is in (2^-(i+1), 2^-i] of the monitored space;
// the last bucket absorbs everything smaller (including degenerate
// zero-area windows).
const AreaBuckets = 16

// KBuckets is the size of the kNN k histogram. Bucket i holds requests
// with k in (2^(i-1), 2^i]; bucket 0 is k ≤ 1 and the last bucket
// absorbs everything larger.
const KBuckets = 8

// TopCells is how many hot cells a Snapshot surfaces, hottest first.
const TopCells = 8

// counter is a cache-line padded atomic so that the high-rate counters
// (points, inserts, ...) on adjacent fields don't false-share.
type counter struct {
	v atomic.Int64
	_ [56]byte
}

// Stats accumulates workload counters for one shard. All Record*
// methods are safe for concurrent use and do not allocate or lock.
type Stats struct {
	space geo.Rect
	// Reciprocal extents for quantising coordinates into the grid
	// without dividing on the hot path.
	invW, invH float64
	invArea    float64

	points  counter
	windows counter
	knns    counter
	inserts counter
	deletes counter

	area [AreaBuckets]atomic.Int64
	k    [KBuckets]atomic.Int64

	// grid counts operations per coarse Z-order cell. Not padded:
	// with 1024 cells under a skewed workload, contention concentrates
	// on a handful of lines and padding would cost 64 KiB per shard.
	grid [GridCells]atomic.Int64
}

// New returns a Stats monitoring traffic over the given space. The
// space fixes the geometry of the hot-region grid and the normalisation
// of the window-area histogram.
func New(space geo.Rect) *Stats {
	s := &Stats{space: space}
	if w := space.Width(); w > 0 {
		s.invW = float64(1<<GridOrder) / w
	}
	if h := space.Height(); h > 0 {
		s.invH = float64(1<<GridOrder) / h
	}
	if a := space.Area(); a > 0 {
		s.invArea = 1 / a
	}
	return s
}

// cell maps a coordinate to its grid cell's Z-order key.
//
//elsi:noalloc
func (s *Stats) cell(x, y float64) uint64 {
	cx := int((x - s.space.MinX) * s.invW)
	cy := int((y - s.space.MinY) * s.invH)
	const max = (1 << GridOrder) - 1
	if cx < 0 {
		cx = 0
	} else if cx > max {
		cx = max
	}
	if cy < 0 {
		cy = 0
	} else if cy > max {
		cy = max
	}
	return curve.ZEncodeCell(uint32(cx), uint32(cy))
}

// touch credits an operation at (x, y) to its hot-region cell.
//
//elsi:noalloc
func (s *Stats) touch(x, y float64) {
	s.grid[s.cell(x, y)].Add(1)
}

// RecordPoint notes one point query.
//
//elsi:noalloc
func (s *Stats) RecordPoint(p geo.Point) {
	if s == nil {
		return
	}
	s.points.v.Add(1)
	s.touch(p.X, p.Y)
}

// RecordWindow notes one window query, crediting the window's center
// cell and its area bucket.
//
//elsi:noalloc
func (s *Stats) RecordWindow(win geo.Rect) {
	if s == nil {
		return
	}
	s.windows.v.Add(1)
	s.touch((win.MinX+win.MaxX)/2, (win.MinY+win.MaxY)/2)
	frac := win.Area() * s.invArea
	b := AreaBuckets - 1
	if frac > 0 {
		if lg := -math.Log2(frac); lg < float64(AreaBuckets-1) {
			if lg < 0 {
				lg = 0
			}
			b = int(lg)
		}
	}
	s.area[b].Add(1)
}

// RecordKNN notes one k-nearest-neighbour query.
//
//elsi:noalloc
func (s *Stats) RecordKNN(q geo.Point, k int) {
	if s == nil {
		return
	}
	s.knns.v.Add(1)
	s.touch(q.X, q.Y)
	if k < 1 {
		k = 1
	}
	b := bits.Len(uint(k - 1)) // 1→0, 2→1, 3..4→2, 5..8→3, ...
	if b > KBuckets-1 {
		b = KBuckets - 1
	}
	s.k[b].Add(1)
}

// RecordInsert notes one insert.
//
//elsi:noalloc
func (s *Stats) RecordInsert(p geo.Point) {
	if s == nil {
		return
	}
	s.inserts.v.Add(1)
	s.touch(p.X, p.Y)
}

// RecordDelete notes one delete.
//
//elsi:noalloc
func (s *Stats) RecordDelete(p geo.Point) {
	if s == nil {
		return
	}
	s.deletes.v.Add(1)
	s.touch(p.X, p.Y)
}

// HotCell is one entry of a Snapshot's hottest-cells list.
type HotCell struct {
	// CellX, CellY are grid coordinates (0 .. 2^GridOrder-1) in the
	// monitored space.
	CellX int   `json:"cx"`
	CellY int   `json:"cy"`
	Count int64 `json:"count"`
}

// Snapshot is a point-in-time copy of a Stats. Counters are read with
// atomic loads but not as a single transaction: a snapshot taken under
// load may be off by the handful of operations in flight, which is fine
// for the consumers (profile derivation, /stats).
type Snapshot struct {
	Points  int64 `json:"points"`
	Windows int64 `json:"windows"`
	KNNs    int64 `json:"knns"`
	Inserts int64 `json:"inserts"`
	Deletes int64 `json:"deletes"`

	WindowArea [AreaBuckets]int64 `json:"window_area"`
	KHist      [KBuckets]int64    `json:"k_hist"`

	// Hot lists up to TopCells grid cells by operation count, hottest
	// first; HotShare is the fraction of grid-credited operations that
	// landed in those cells (1.0 = perfectly concentrated).
	Hot      []HotCell `json:"hot,omitempty"`
	HotShare float64   `json:"hot_share"`

	// Grid is the raw per-cell histogram, indexed by Z-order cell key.
	// Kept out of JSON (1024 entries per shard); used by Sub.
	Grid []int64 `json:"-"`
}

// Snapshot copies the current counters. Safe to call concurrently with
// recording; allocates (the grid copy), so keep it off hot paths.
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	snap := Snapshot{
		Points:  s.points.v.Load(),
		Windows: s.windows.v.Load(),
		KNNs:    s.knns.v.Load(),
		Inserts: s.inserts.v.Load(),
		Deletes: s.deletes.v.Load(),
		Grid:    make([]int64, GridCells),
	}
	for i := range s.area {
		snap.WindowArea[i] = s.area[i].Load()
	}
	for i := range s.k {
		snap.KHist[i] = s.k[i].Load()
	}
	for i := range s.grid {
		snap.Grid[i] = s.grid[i].Load()
	}
	snap.fillHot()
	return snap
}

// Sub returns the traffic between prev and s (s - prev), recomputing
// the hot-cell list for the delta. prev must be an earlier snapshot of
// the same Stats (or the zero Snapshot).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		Points:  s.Points - prev.Points,
		Windows: s.Windows - prev.Windows,
		KNNs:    s.KNNs - prev.KNNs,
		Inserts: s.Inserts - prev.Inserts,
		Deletes: s.Deletes - prev.Deletes,
	}
	for i := range d.WindowArea {
		d.WindowArea[i] = s.WindowArea[i] - prev.WindowArea[i]
	}
	for i := range d.KHist {
		d.KHist[i] = s.KHist[i] - prev.KHist[i]
	}
	if len(s.Grid) == GridCells {
		d.Grid = make([]int64, GridCells)
		copy(d.Grid, s.Grid)
		if len(prev.Grid) == GridCells {
			for i := range d.Grid {
				d.Grid[i] -= prev.Grid[i]
			}
		}
	}
	d.fillHot()
	return d
}

// Reads is the number of read operations in the snapshot.
func (s Snapshot) Reads() int64 { return s.Points + s.Windows + s.KNNs }

// Writes is the number of mutating operations in the snapshot.
func (s Snapshot) Writes() int64 { return s.Inserts + s.Deletes }

// Total is the number of operations in the snapshot.
func (s Snapshot) Total() int64 { return s.Reads() + s.Writes() }

// fillHot derives Hot and HotShare from Grid.
func (s *Snapshot) fillHot() {
	if len(s.Grid) != GridCells {
		return
	}
	var top [TopCells]struct {
		key uint64
		n   int64
	}
	var total int64
	for key, n := range s.Grid {
		if n <= 0 {
			continue
		}
		total += n
		if n <= top[TopCells-1].n {
			continue
		}
		i := TopCells - 1
		for i > 0 && top[i-1].n < n {
			top[i] = top[i-1]
			i--
		}
		top[i].key, top[i].n = uint64(key), n
	}
	if total == 0 {
		return
	}
	var inTop int64
	for _, t := range top {
		if t.n == 0 {
			break
		}
		cx, cy := curve.ZDecodeCell(t.key)
		s.Hot = append(s.Hot, HotCell{CellX: int(cx), CellY: int(cy), Count: t.n})
		inTop += t.n
	}
	s.HotShare = float64(inTop) / float64(total)
}

// CellRect returns the geometry of a grid cell within space, for
// mapping a HotCell back to coordinates.
func CellRect(space geo.Rect, cx, cy int) geo.Rect {
	w := space.Width() / float64(int(1)<<GridOrder)
	h := space.Height() / float64(int(1)<<GridOrder)
	return geo.Rect{
		MinX: space.MinX + float64(cx)*w,
		MinY: space.MinY + float64(cy)*h,
		MaxX: space.MinX + float64(cx+1)*w,
		MaxY: space.MinY + float64(cy+1)*h,
	}
}
