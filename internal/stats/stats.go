// Package stats provides the summary statistics the benchmark harness
// reports: mean, standard deviation, and percentiles of latency
// samples. Averages alone hide the tail behaviour that predict-and-
// scan indices exhibit when a model's error bounds blow up on a
// region, so the extension experiments report P50/P95/P99 as well.
package stats

import (
	"math"
	"sort"
	"time"
)

// Summary aggregates a latency sample.
type Summary struct {
	Count         int
	Mean          time.Duration
	StdDev        time.Duration
	Min, Max      time.Duration
	P50, P95, P99 time.Duration
}

// Summarize computes a Summary of samples (which it sorts in place).
func Summarize(samples []time.Duration) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum float64
	for _, s := range samples {
		sum += float64(s)
	}
	mean := sum / float64(n)
	var varSum float64
	for _, s := range samples {
		d := float64(s) - mean
		varSum += d * d
	}
	return Summary{
		Count:  n,
		Mean:   time.Duration(mean),
		StdDev: time.Duration(math.Sqrt(varSum / float64(n))),
		Min:    samples[0],
		Max:    samples[n-1],
		P50:    Percentile(samples, 0.50),
		P95:    Percentile(samples, 0.95),
		P99:    Percentile(samples, 0.99),
	}
}

// Percentile returns the p-quantile (0 <= p <= 1) of sorted samples
// using the nearest-rank method.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(p*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return sorted[rank]
}

// MeanFloat returns the arithmetic mean of vs (0 for empty input).
func MeanFloat(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// GeoMean returns the geometric mean of positive vs — the right
// average for speedup factors (the paper's "70x on average").
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vs)))
}
