package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestSummarizeBasic(t *testing.T) {
	samples := []time.Duration{5000, 1000, 3000, 2000, 4000}
	s := Summarize(samples)
	if s.Count != 5 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Mean != 3000 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Min != 1000 || s.Max != 5000 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 3000 {
		t.Errorf("P50 = %v", s.P50)
	}
	// population stddev of {1..5}k is sqrt(2)*1000; Duration truncates
	if math.Abs(float64(s.StdDev)-math.Sqrt2*1000) > 1 {
		t.Errorf("StdDev = %v", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.P99 != 0 {
		t.Errorf("empty Summary = %+v", s)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i + 1)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{{0, 1}, {0.5, 50}, {0.95, 95}, {0.99, 99}, {1, 100}}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile")
	}
}

func TestPercentileOrderingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := make([]time.Duration, 500)
	for i := range samples {
		samples[i] = time.Duration(rng.Intn(100000))
	}
	s := Summarize(samples)
	if !(s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("percentiles out of order: %+v", s)
	}
}

func TestMeanFloat(t *testing.T) {
	if got := MeanFloat([]float64{1, 2, 3}); got != 2 {
		t.Errorf("MeanFloat = %v", got)
	}
	if got := MeanFloat(nil); got != 0 {
		t.Errorf("empty MeanFloat = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if got := GeoMean([]float64{4, 4, 4}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("empty GeoMean = %v", got)
	}
	if got := GeoMean([]float64{1, -1}); got != 0 {
		t.Errorf("negative GeoMean = %v", got)
	}
}
