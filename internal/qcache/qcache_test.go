package qcache

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"elsi/internal/geo"
	"elsi/internal/indextest"
)

func TestPointHitMissStale(t *testing.T) {
	c := New(Config{})
	k := PointKey(geo.Point{X: 0.5, Y: 0.5})

	if _, ok := c.GetPoint(k, 1); ok {
		t.Fatal("hit on empty cache")
	}
	c.PutPoint(k, 1, true)
	v, ok := c.GetPoint(k, 1)
	if !ok || !v {
		t.Fatalf("GetPoint = %v, %v, want true, true", v, ok)
	}
	// A different generation must never be served.
	if _, ok := c.GetPoint(k, 2); ok {
		t.Fatal("served entry with mismatched generation")
	}
	st := c.CacheStats()
	if st.Hits != 1 || st.Misses != 2 || st.Stale != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWindowRoundTrip(t *testing.T) {
	c := New(Config{})
	win := geo.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.12, MaxY: 0.12}
	k := WindowKey(win)
	pts := []geo.Point{{X: 0.105, Y: 0.105}, {X: 0.11, Y: 0.11}}

	c.PutWindow(k, 7, pts)
	pts[0] = geo.Point{X: 99, Y: 99} // cache must have copied

	out, ok := c.GetWindowAppend(k, 7, nil)
	if !ok || len(out) != 2 || out[0].X != 0.105 {
		t.Fatalf("GetWindowAppend = %v, %v", out, ok)
	}
	// Append form: result goes after existing elements.
	prefix := []geo.Point{{X: -1, Y: -1}}
	out, ok = c.GetWindowAppend(k, 7, prefix)
	if !ok || len(out) != 3 || out[0].X != -1 {
		t.Fatalf("append-form fill = %v, %v", out, ok)
	}
	if _, ok := c.GetWindowAppend(k, 8, nil); ok {
		t.Fatal("served window with mismatched generation")
	}
}

func TestOversizeWindowNotCached(t *testing.T) {
	c := New(Config{MaxWindowPoints: 2})
	k := WindowKey(geo.Rect{MaxX: 0.01, MaxY: 0.01})
	c.PutWindow(k, 1, make([]geo.Point, 3))
	if _, ok := c.GetWindowAppend(k, 1, nil); ok {
		t.Fatal("oversize result was cached")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestCacheable(t *testing.T) {
	c := New(Config{MaxWindowArea: 1e-3})
	if !c.Cacheable(geo.Rect{MaxX: 0.03, MaxY: 0.03}) {
		t.Error("small window not cacheable")
	}
	if c.Cacheable(geo.Rect{MaxX: 0.5, MaxY: 0.5}) {
		t.Error("large window cacheable")
	}
	var nilC *Cache
	if nilC.Cacheable(geo.Rect{}) {
		t.Error("nil cache cacheable")
	}
}

func TestEvictionBound(t *testing.T) {
	cfg := Config{Shards: 2, MaxEntries: 8}
	c := New(cfg)
	for i := 0; i < 1000; i++ {
		c.PutPoint(PointKey(geo.Point{X: float64(i), Y: 0}), 1, i%2 == 0)
	}
	limit := 2 * 8 // Shards × MaxEntries
	if n := c.Len(); n > limit {
		t.Fatalf("Len = %d, want ≤ %d", n, limit)
	}
	if st := c.CacheStats(); st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	// The most recent keys must still be resident in their shards.
	recent := 0
	for i := 990; i < 1000; i++ {
		if _, ok := c.GetPoint(PointKey(geo.Point{X: float64(i), Y: 0}), 1); ok {
			recent++
		}
	}
	if recent == 0 {
		t.Fatal("FIFO evicted everything recent")
	}
}

func TestDrop(t *testing.T) {
	c := New(Config{})
	k := PointKey(geo.Point{X: 1, Y: 2})
	c.PutPoint(k, 1, true)
	c.Drop(k)
	if _, ok := c.GetPoint(k, 1); ok {
		t.Fatal("entry survived Drop")
	}
	c.Drop(k) // dropping a missing key is a no-op
	if st := c.CacheStats(); st.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", st.Drops)
	}
	// A dropped key's stale ring slot must not break later eviction.
	for i := 0; i < 100; i++ {
		c.PutPoint(PointKey(geo.Point{X: float64(i), Y: 9}), 1, false)
	}
}

func TestNilSafe(t *testing.T) {
	var c *Cache
	c.PutPoint(Key{}, 1, true)
	c.PutWindow(Key{}, 1, nil)
	c.Drop(Key{})
	if _, ok := c.GetPoint(Key{}, 1); ok {
		t.Fatal("nil cache hit")
	}
	if _, ok := c.GetWindowAppend(Key{}, 1, nil); ok {
		t.Fatal("nil cache hit")
	}
	if c.Len() != 0 || c.CacheStats() != (Stats{}) {
		t.Fatal("nil cache stats")
	}
}

// store is the reference model: a mutex-guarded key→value map whose
// generation advances atomically with every mutation, exactly the
// contract rebuild.Processor implements with its update generation.
type store struct {
	mu   sync.RWMutex
	gen  uint64
	vals map[Key]bool
}

// TestModelFuzz drives random fills, mutations, and rebuild-style bulk
// swaps through the cache single-threaded, checking every lookup
// against the always-miss oracle (the model itself).
func TestModelFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]Key, 32)
	for i := range keys {
		keys[i] = PointKey(geo.Point{X: float64(i), Y: float64(i)})
	}
	c := New(Config{Shards: 4, MaxEntries: 8}) // small: force evictions
	s := &store{vals: make(map[Key]bool)}
	for i := range keys {
		s.vals[keys[i]] = rng.Intn(2) == 0
	}

	for step := 0; step < 20000; step++ {
		k := keys[rng.Intn(len(keys))]
		switch op := rng.Intn(10); {
		case op < 5: // lookup via cache, fill on miss
			v, ok := c.GetPoint(k, s.gen)
			if ok && v != s.vals[k] {
				t.Fatalf("step %d: cache says %v, oracle says %v", step, v, s.vals[k])
			}
			if !ok {
				c.PutPoint(k, s.gen, s.vals[k])
			}
		case op < 7: // point mutation: value + generation move together
			s.vals[k] = !s.vals[k]
			s.gen++
		case op < 8: // rebuild swap: bulk change, one generation bump
			for i := range keys {
				s.vals[keys[i]] = rng.Intn(2) == 0
			}
			s.gen++
		case op < 9: // advisory drop (the fault can also eat these)
			c.Drop(k)
		default: // stale fill: an old generation must never surface later
			c.PutPoint(k, s.gen-1, !s.vals[k])
		}
	}
	if st := c.CacheStats(); st.Hits == 0 || st.Evictions == 0 || st.Stale == 0 {
		t.Fatalf("fuzz did not exercise the interesting paths: %+v", st)
	}
}

// TestRacedOracle runs readers, writers, and a rebuild-swapper
// concurrently (meaningful under -race). Readers hold the store's read
// lock across [generation read → cache lookup → oracle compare], so a
// hit stamped with the observed generation must equal the oracle value
// — the exact guarantee the engine relies on.
func TestRacedOracle(t *testing.T) {
	keys := make([]Key, 16)
	for i := range keys {
		keys[i] = PointKey(geo.Point{X: float64(i), Y: 0})
	}
	c := New(Config{Shards: 4, MaxEntries: 64})
	s := &store{vals: make(map[Key]bool)}
	for _, k := range keys {
		s.vals[k] = true
	}

	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	fail := make(chan string, 1)

	// Writers: insert/delete-style single-key flips.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[rng.Intn(len(keys))]
				s.mu.Lock()
				s.vals[k] = !s.vals[k]
				s.gen++
				s.mu.Unlock()
				if rng.Intn(4) != 0 {
					c.Drop(k) // advisory: sometimes skipped, like a dropped invalidation
				}
			}
		}(int64(w + 10))
	}
	// Rebuild-swapper: bulk mutation under one bump.
	writers.Add(1)
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.mu.Lock()
			for _, k := range keys {
				s.vals[k] = rng.Intn(2) == 0
			}
			s.gen++
			s.mu.Unlock()
			runtime.Gosched()
		}
	}()
	// Readers: cache-first with oracle check, fill on miss.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 20000; i++ {
				k := keys[rng.Intn(len(keys))]
				s.mu.RLock()
				gen := s.gen
				truth := s.vals[k]
				v, ok := c.GetPoint(k, gen)
				if ok && v != truth {
					select {
					case fail <- "stale cache hit: cached value diverged from oracle at same generation":
					default:
					}
				}
				s.mu.RUnlock()
				if !ok {
					// Fill outside the lock: by then the stamp may be
					// stale, which must only ever cost a miss.
					c.PutPoint(k, gen, truth)
				}
			}
		}(int64(r + 50))
	}

	// Readers bound the test; writers spin until they finish.
	readers.Wait()
	close(stop)
	writers.Wait()

	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if st := c.CacheStats(); st.Hits == 0 {
		t.Logf("note: no hits under race (allowed, but suspicious): %+v", st)
	}
}

func TestGetPointZeroAllocs(t *testing.T) {
	c := New(Config{})
	k := PointKey(geo.Point{X: 0.25, Y: 0.75})
	c.PutPoint(k, 3, true)
	indextest.AssertZeroAllocs(t, "qcache.GetPoint hit", func() {
		if _, ok := c.GetPoint(k, 3); !ok {
			t.Fatal("expected hit")
		}
	})
}

func TestGetWindowAppendZeroAllocs(t *testing.T) {
	c := New(Config{})
	win := geo.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.12, MaxY: 0.12}
	k := WindowKey(win)
	c.PutWindow(k, 3, []geo.Point{{X: 0.11, Y: 0.11}})
	buf := make([]geo.Point, 0, 16)
	indextest.AssertZeroAllocs(t, "qcache.GetWindowAppend hit", func() {
		out, ok := c.GetWindowAppend(k, 3, buf[:0])
		if !ok || len(out) != 1 {
			t.Fatal("expected hit")
		}
	})
}
