// Package qcache is a sharded, bounded, generation-stamped result
// cache for point and small-window queries.
//
// Correctness is by coarse invalidation, not precise tracking: the
// index owner (rebuild.Processor) bumps a generation counter under its
// write lock on every insert, delete, and rebuild swap. The cache never
// interprets results — a filler reads the owner's generation BEFORE
// computing the uncached answer and stamps the entry with that value; a
// lookup serves an entry only when its stamp equals the generation the
// caller read. Any mutation between the stamp read and the fill makes
// the entry's stamp stale, so the entry is dead on arrival rather than
// wrong; the race costs a miss, never a stale answer (the argument is
// spelled out in DESIGN.md §15).
//
// Lookups take one RWMutex read-lock on one of the cache's internal
// shards and are allocation-free on hit (append-form fill for window
// results); fills and evictions take the write lock. Eviction is FIFO
// per cache shard — cheap, and good enough under the skewed workloads
// the cache exists for, where the hot set is far smaller than capacity.
package qcache

import (
	"math"
	"sync"
	"sync/atomic"

	"elsi/internal/geo"
)

// Config sizes a Cache. The zero value selects sane defaults.
type Config struct {
	// Shards is the number of internal lock shards (rounded up to a
	// power of two). Default 8.
	Shards int
	// MaxEntries bounds the entry count per lock shard; FIFO eviction
	// beyond it. Default 2048 (×Shards total).
	MaxEntries int
	// MaxWindowPoints caps the result size a window entry may store;
	// larger results are not cached (copying them in and out would eat
	// the win). Default 64.
	MaxWindowPoints int
	// MaxWindowArea caps the area of a cacheable window query. Callers
	// consult it via Cacheable; larger windows bypass the cache.
	// Default 1e-3 (a 0.032×0.032 window of a unit space).
	MaxWindowArea float64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	// Round up to a power of two so shardFor can mask.
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.MaxEntries <= 0 {
		c.MaxEntries = 2048
	}
	if c.MaxWindowPoints <= 0 {
		c.MaxWindowPoints = 64
	}
	if c.MaxWindowArea <= 0 {
		c.MaxWindowArea = 1e-3
	}
	return c
}

// Operation tags for Key.Op. Exported so tests can build keys directly.
const (
	OpPoint  = 1
	OpWindow = 2
)

// Key identifies a cached query. It is a comparable struct (not a byte
// string) so map lookups on the hit path never convert or allocate.
type Key struct {
	Op             uint8
	X0, Y0, X1, Y1 float64
}

// PointKey is the cache key for a point query.
//
//elsi:noalloc
func PointKey(p geo.Point) Key {
	return Key{Op: OpPoint, X0: p.X, Y0: p.Y}
}

// WindowKey is the cache key for a window query.
//
//elsi:noalloc
func WindowKey(w geo.Rect) Key {
	return Key{Op: OpWindow, X0: w.MinX, Y0: w.MinY, X1: w.MaxX, Y1: w.MaxY}
}

type entry struct {
	gen uint64
	hit bool        // point answer
	pts []geo.Point // window answer (immutable once stored)
}

type cshard struct {
	mu   sync.RWMutex
	m    map[Key]entry
	ring []Key // FIFO of the map's keys, insertion order
	pos  int   // next eviction slot once ring is full
	_    [24]byte
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Stale     int64   `json:"stale"` // generation-mismatch lookups (subset of misses)
	Puts      int64   `json:"puts"`
	Evictions int64   `json:"evictions"`
	Drops     int64   `json:"drops"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hit_rate"`
}

// Cache is a sharded generation-stamped result cache. Safe for
// concurrent use.
type Cache struct {
	cfg    Config
	shards []cshard
	mask   uint64

	hits      atomic.Int64
	misses    atomic.Int64
	stale     atomic.Int64
	puts      atomic.Int64
	evictions atomic.Int64
	drops     atomic.Int64
}

// New builds a Cache from cfg (zero value ok).
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{
		cfg:    cfg,
		shards: make([]cshard, cfg.Shards),
		mask:   uint64(cfg.Shards - 1),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]entry, cfg.MaxEntries)
		c.shards[i].ring = make([]Key, 0, cfg.MaxEntries)
	}
	return c
}

// Cacheable reports whether a window query is small enough to cache.
//
//elsi:noalloc
func (c *Cache) Cacheable(w geo.Rect) bool {
	return c != nil && w.Area() <= c.cfg.MaxWindowArea
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvMix folds one 64-bit word into an FNV-1a hash byte by byte.
//
//elsi:noalloc
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// shardFor hashes a key to its lock shard (FNV-1a over the coordinate
// bit patterns).
//
//elsi:noalloc
func (c *Cache) shardFor(k Key) *cshard {
	h := uint64(fnvOffset)
	h ^= uint64(k.Op)
	h *= fnvPrime
	h = fnvMix(h, math.Float64bits(k.X0))
	h = fnvMix(h, math.Float64bits(k.Y0))
	h = fnvMix(h, math.Float64bits(k.X1))
	h = fnvMix(h, math.Float64bits(k.Y1))
	return &c.shards[h&c.mask]
}

// GetPoint returns the cached answer for k if present and stamped with
// exactly gen. The second result reports a usable hit.
//
//elsi:noalloc
func (c *Cache) GetPoint(k Key, gen uint64) (bool, bool) {
	if c == nil {
		return false, false
	}
	s := c.shardFor(k)
	s.mu.RLock()
	e, ok := s.m[k]
	s.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return false, false
	}
	if e.gen != gen {
		c.stale.Add(1)
		c.misses.Add(1)
		return false, false
	}
	c.hits.Add(1)
	return e.hit, true
}

// GetWindowAppend appends the cached result for k to out and returns
// it, if an entry stamped with exactly gen exists. The second result
// reports a usable hit; on miss, out is returned unchanged.
//
//elsi:noalloc
func (c *Cache) GetWindowAppend(k Key, gen uint64, out []geo.Point) ([]geo.Point, bool) {
	if c == nil {
		return out, false
	}
	s := c.shardFor(k)
	s.mu.RLock()
	e, ok := s.m[k]
	if ok && e.gen == gen {
		// Copy while holding the read lock; entries are immutable but
		// the map slot may be overwritten after release.
		out = append(out, e.pts...)
		s.mu.RUnlock()
		c.hits.Add(1)
		return out, true
	}
	s.mu.RUnlock()
	if ok {
		c.stale.Add(1)
	}
	c.misses.Add(1)
	return out, false
}

// PutPoint stores the answer for a point query computed against
// generation gen. gen must have been read from the index owner BEFORE
// the answer was computed.
func (c *Cache) PutPoint(k Key, gen uint64, hit bool) {
	if c == nil {
		return
	}
	c.put(k, entry{gen: gen, hit: hit})
}

// PutWindow stores a window result computed against generation gen.
// Results larger than MaxWindowPoints are silently not cached. The
// cache keeps its own copy; the caller retains pts.
func (c *Cache) PutWindow(k Key, gen uint64, pts []geo.Point) {
	if c == nil || len(pts) > c.cfg.MaxWindowPoints {
		return
	}
	cp := make([]geo.Point, len(pts))
	copy(cp, pts)
	c.put(k, entry{gen: gen, pts: cp})
}

func (c *Cache) put(k Key, e entry) {
	s := c.shardFor(k)
	s.mu.Lock()
	if _, ok := s.m[k]; ok {
		// Overwrite in place; the key keeps its ring slot.
		s.m[k] = e
	} else if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, k)
		s.m[k] = e
	} else {
		// Full: evict the FIFO victim and reuse its slot.
		delete(s.m, s.ring[s.pos])
		s.ring[s.pos] = k
		s.pos++
		if s.pos == len(s.ring) {
			s.pos = 0
		}
		s.m[k] = e
		c.evictions.Add(1)
	}
	s.mu.Unlock()
	c.puts.Add(1)
}

// Drop removes k if present. Purely advisory: generation stamps already
// keep stale entries from being served, dropping just frees the slot
// earlier. Callers may skip it entirely (or a fault may eat it) without
// affecting correctness.
func (c *Cache) Drop(k Key) {
	if c == nil {
		return
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if _, ok := s.m[k]; ok {
		delete(s.m, k)
		// Leave the ring slot in place; eviction tolerates keys that
		// are no longer mapped (delete of a missing key is a no-op).
		c.drops.Add(1)
	}
	s.mu.Unlock()
}

// Len is the live entry count across all shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// CacheStats snapshots the counters.
func (c *Cache) CacheStats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Stale:     c.stale.Load(),
		Puts:      c.puts.Load(),
		Evictions: c.evictions.Load(),
		Drops:     c.drops.Load(),
		Entries:   c.Len(),
	}
	if tot := st.Hits + st.Misses; tot > 0 {
		st.HitRate = float64(st.Hits) / float64(tot)
	}
	return st
}
