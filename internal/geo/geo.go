// Package geo provides the planar geometry primitives shared by every
// spatial index in this repository: points, axis-aligned rectangles
// (minimum bounding rectangles), and the distance predicates used by
// window and k-nearest-neighbour queries.
package geo

import (
	"fmt"
	"math"
)

// Point is a point in 2-dimensional Euclidean space.
type Point struct {
	X, Y float64
}

// Dist2 returns the squared Euclidean distance between p and q.
// Squared distances are used throughout the query paths so that
// comparisons avoid the math.Sqrt call.
//
//elsi:noalloc
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Dist returns the Euclidean distance between p and q.
//
//elsi:noalloc
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.Dist2(q))
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%g, %g)", p.X, p.Y)
}

// Rect is a closed axis-aligned rectangle [MinX, MaxX] x [MinY, MaxY].
// It doubles as the minimum bounding rectangle (MBR) of a point set.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// UnitRect is the unit square, the default data space of the synthetic
// data sets used in the paper's experiments.
var UnitRect = Rect{0, 0, 1, 1}

// EmptyRect returns a degenerate rectangle that acts as the identity
// for Union: any rectangle unioned with it is returned unchanged.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether r is the empty rectangle (has no extent and
// contains no point).
//
//elsi:noalloc
func (r Rect) IsEmpty() bool {
	return r.MinX > r.MaxX || r.MinY > r.MaxY
}

// Contains reports whether the point p lies inside r (boundaries included).
//
//elsi:noalloc
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r.
//
//elsi:noalloc
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
//
//elsi:noalloc
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersection returns the overlap of r and s; the result is empty when
// the rectangles are disjoint.
//
//elsi:noalloc
func (r Rect) Intersection(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	return out
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Extend grows r in place so that it covers p and returns the result.
func (r Rect) Extend(p Point) Rect {
	if r.IsEmpty() {
		return Rect{p.X, p.Y, p.X, p.Y}
	}
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.X > r.MaxX {
		r.MaxX = p.X
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.Y > r.MaxY {
		r.MaxY = p.Y
	}
	return r
}

// Area returns the area of r; empty rectangles have zero area.
//
//elsi:noalloc
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Margin returns the perimeter of r. R*-tree split heuristics minimize
// margin as a tiebreaker.
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return 2 * ((r.MaxX - r.MinX) + (r.MaxY - r.MinY))
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Width and Height return the side lengths of r.
//
//elsi:noalloc
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

//elsi:noalloc
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Dist2 returns the squared minimum distance from p to r (zero when p
// is inside r). It is the MINDIST bound used by branch-and-bound kNN.
//
//elsi:noalloc
func (r Rect) Dist2(p Point) float64 {
	var dx, dy float64
	switch {
	case p.X < r.MinX:
		dx = r.MinX - p.X
	case p.X > r.MaxX:
		dx = p.X - r.MaxX
	}
	switch {
	case p.Y < r.MinY:
		dy = r.MinY - p.Y
	case p.Y > r.MaxY:
		dy = p.Y - r.MaxY
	}
	return dx*dx + dy*dy
}

// EnlargementArea returns how much r's area grows if extended to cover s.
func (r Rect) EnlargementArea(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// OverlapArea returns the area of the intersection of r and s.
func (r Rect) OverlapArea(s Rect) float64 {
	in := r.Intersection(s)
	if in.IsEmpty() {
		return 0
	}
	return in.Area()
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// BoundingRect returns the MBR of pts, or the empty rectangle when pts
// is empty.
func BoundingRect(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.Extend(p)
	}
	return r
}

// Clamp returns p moved to the closest location inside r.
func (r Rect) Clamp(p Point) Point {
	if p.X < r.MinX {
		p.X = r.MinX
	}
	if p.X > r.MaxX {
		p.X = r.MaxX
	}
	if p.Y < r.MinY {
		p.Y = r.MinY
	}
	if p.Y > r.MaxY {
		p.Y = r.MaxY
	}
	return p
}
