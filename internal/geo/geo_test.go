package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := p.Dist2(q); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := p.Dist(p); got != 0 {
		t.Errorf("Dist(p,p) = %v, want 0", got)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 1, 1}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0.5, 0.5}, true},
		{Point{0, 0}, true}, // boundary
		{Point{1, 1}, true}, // boundary
		{Point{1.01, 0.5}, false},
		{Point{-0.01, 0.5}, false},
		{Point{0.5, 2}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{0.5, 0.5, 2, 2}, true},
		{Rect{1, 1, 2, 2}, true}, // corner touch
		{Rect{1.1, 1.1, 2, 2}, false},
		{Rect{-1, -1, -0.1, -0.1}, false},
		{Rect{0.2, 0.2, 0.4, 0.4}, true}, // containment
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects symmetric (%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect is not empty")
	}
	if e.Area() != 0 {
		t.Errorf("empty Area = %v, want 0", e.Area())
	}
	r := Rect{0, 0, 2, 3}
	if got := e.Union(r); got != r {
		t.Errorf("empty Union identity failed: %v", got)
	}
	if got := r.Union(e); got != r {
		t.Errorf("Union with empty failed: %v", got)
	}
}

func TestRectUnionExtend(t *testing.T) {
	r := EmptyRect()
	pts := []Point{{1, 2}, {-1, 0}, {3, -5}}
	for _, p := range pts {
		r = r.Extend(p)
	}
	want := Rect{-1, -5, 3, 2}
	if r != want {
		t.Errorf("Extend chain = %v, want %v", r, want)
	}
	if got := BoundingRect(pts); got != want {
		t.Errorf("BoundingRect = %v, want %v", got, want)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("bounding rect does not contain %v", p)
		}
	}
}

func TestRectAreaMargin(t *testing.T) {
	r := Rect{0, 0, 2, 3}
	if got := r.Area(); got != 6 {
		t.Errorf("Area = %v, want 6", got)
	}
	if got := r.Margin(); got != 10 {
		t.Errorf("Margin = %v, want 10", got)
	}
	if got := r.Center(); got != (Point{1, 1.5}) {
		t.Errorf("Center = %v", got)
	}
	if r.Width() != 2 || r.Height() != 3 {
		t.Errorf("Width/Height = %v/%v", r.Width(), r.Height())
	}
}

func TestRectDist2(t *testing.T) {
	r := Rect{0, 0, 1, 1}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{0.5, 0.5}, 0}, // inside
		{Point{2, 0.5}, 1},   // right
		{Point{0.5, -2}, 4},  // below
		{Point{2, 2}, 2},     // corner: 1+1
		{Point{1, 1}, 0},     // boundary
	}
	for _, c := range cases {
		if got := r.Dist2(c.p); got != c.want {
			t.Errorf("Dist2(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestIntersectionOverlap(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	in := a.Intersection(b)
	want := Rect{1, 1, 2, 2}
	if in != want {
		t.Errorf("Intersection = %v, want %v", in, want)
	}
	if got := a.OverlapArea(b); got != 1 {
		t.Errorf("OverlapArea = %v, want 1", got)
	}
	c := Rect{5, 5, 6, 6}
	if got := a.OverlapArea(c); got != 0 {
		t.Errorf("disjoint OverlapArea = %v, want 0", got)
	}
	if !a.Intersection(c).IsEmpty() {
		t.Error("disjoint Intersection should be empty")
	}
}

func TestEnlargement(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{0.2, 0.2, 0.8, 0.8}
	if got := a.EnlargementArea(b); got != 0 {
		t.Errorf("contained EnlargementArea = %v, want 0", got)
	}
	c := Rect{0, 0, 2, 1}
	if got := a.EnlargementArea(c); got != 1 {
		t.Errorf("EnlargementArea = %v, want 1", got)
	}
}

func TestClamp(t *testing.T) {
	r := Rect{0, 0, 1, 1}
	if got := r.Clamp(Point{2, -1}); got != (Point{1, 0}) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Clamp(Point{0.3, 0.7}); got != (Point{0.3, 0.7}) {
		t.Errorf("Clamp inside = %v", got)
	}
}

func TestContainsRect(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	if !a.ContainsRect(Rect{1, 1, 2, 2}) {
		t.Error("ContainsRect inner failed")
	}
	if !a.ContainsRect(a) {
		t.Error("ContainsRect self failed")
	}
	if a.ContainsRect(Rect{1, 1, 5, 2}) {
		t.Error("ContainsRect overflow should be false")
	}
}

// Property: Union covers both operands; Intersection is inside both.
func TestQuickUnionIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mk := func() Rect {
		x1, x2 := rng.Float64(), rng.Float64()
		y1, y2 := rng.Float64(), rng.Float64()
		return Rect{math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2)}
	}
	f := func() bool {
		a, b := mk(), mk()
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			return false
		}
		in := a.Intersection(b)
		if !in.IsEmpty() && (!a.ContainsRect(in) || !b.ContainsRect(in)) {
			return false
		}
		// inclusion-exclusion sanity: overlap <= min(area)
		if a.OverlapArea(b) > math.Min(a.Area(), b.Area())+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Dist2 to a rect is zero iff the point is inside.
func TestQuickRectDist2(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		r := Rect{rng.Float64(), rng.Float64(), 0, 0}
		r.MaxX = r.MinX + rng.Float64()
		r.MaxY = r.MinY + rng.Float64()
		p := Point{rng.Float64() * 3, rng.Float64() * 3}
		d := r.Dist2(p)
		if r.Contains(p) {
			return d == 0
		}
		return d > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
