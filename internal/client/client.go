// Package client holds the two matching clients of the serving
// stack: HTTP speaks the JSON API and TCP speaks the binary protocol.
// Both expose the same five-operation surface plus Stats, and both
// translate the server's backpressure signal (HTTP 429, the
// protocol's overloaded status) back into engine.ErrOverloaded so
// callers — the load generator in particular — can treat shed load
// uniformly across transports.
package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"

	"elsi/internal/engine"
	"elsi/internal/geo"
	"elsi/internal/protocol"
	"elsi/internal/server"
)

// HTTP is a client for the JSON API. The zero value with Base set is
// ready to use; it is safe for concurrent use (requests are
// independent HTTP round trips).
type HTTP struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// C overrides http.DefaultClient.
	C *http.Client
}

func (c *HTTP) client() *http.Client {
	if c.C != nil {
		return c.C
	}
	return http.DefaultClient
}

// post runs one JSON round trip, decoding into out (which may be nil
// for callers that only care about the status).
func (c *HTTP) post(path string, in, out any) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := c.client().Post(c.Base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	return decodeHTTP(resp, out)
}

func decodeHTTP(resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, protocol.MaxFrame))
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return engine.ErrOverloaded
	case http.StatusServiceUnavailable:
		return engine.ErrClosed
	default:
		var e server.ErrorBody
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s", e.Error)
		}
		return fmt.Errorf("server: HTTP %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// PointQuery reports whether pt is stored.
func (c *HTTP) PointQuery(pt geo.Point) (bool, error) {
	var out server.FoundBody
	err := c.post("/query/point", server.PointBody{X: pt.X, Y: pt.Y}, &out)
	return out.Found, err
}

// WindowQuery returns the points inside win.
func (c *HTTP) WindowQuery(win geo.Rect) ([]geo.Point, error) {
	var out server.PointsBody
	err := c.post("/query/window", server.WindowBody{MinX: win.MinX, MinY: win.MinY, MaxX: win.MaxX, MaxY: win.MaxY}, &out)
	return fromPointsBody(out), err
}

// KNN returns the k nearest stored points to q.
func (c *HTTP) KNN(q geo.Point, k int) ([]geo.Point, error) {
	var out server.PointsBody
	err := c.post("/query/knn", server.KNNBody{X: q.X, Y: q.Y, K: k}, &out)
	return fromPointsBody(out), err
}

// Insert adds pt, reporting whether it triggered a rebuild.
func (c *HTTP) Insert(pt geo.Point) (bool, error) {
	var out server.RebuildBody
	err := c.post("/insert", server.PointBody{X: pt.X, Y: pt.Y}, &out)
	return out.Rebuild, err
}

// Delete removes pt, reporting whether it triggered a rebuild.
func (c *HTTP) Delete(pt geo.Point) (bool, error) {
	var out server.RebuildBody
	err := c.post("/delete", server.PointBody{X: pt.X, Y: pt.Y}, &out)
	return out.Rebuild, err
}

// Stats fetches the server's stats snapshot.
func (c *HTTP) Stats() (engine.Stats, error) {
	resp, err := c.client().Get(c.Base + "/stats")
	if err != nil {
		return engine.Stats{}, err
	}
	var st engine.Stats
	err = decodeHTTP(resp, &st)
	return st, err
}

func fromPointsBody(body server.PointsBody) []geo.Point {
	out := make([]geo.Point, len(body.Points))
	for i, p := range body.Points {
		out[i] = geo.Point{X: p.X, Y: p.Y}
	}
	return out
}

// TCP is a client for the binary protocol. One TCP serializes its
// round trips over a single connection (the protocol has no request
// IDs); open one per concurrent caller for parallelism.
type TCP struct {
	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte
}

// DialTCP connects to a binary-protocol address.
func DialTCP(addr string) (*TCP, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCP{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *TCP) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

func (c *TCP) roundTrip(req protocol.Request) (protocol.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = protocol.AppendRequest(c.buf[:0], req)
	if err := protocol.WriteFrame(c.bw, c.buf); err != nil {
		return protocol.Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return protocol.Response{}, err
	}
	body, err := protocol.ReadFrame(c.br)
	if err != nil {
		return protocol.Response{}, err
	}
	resp, err := protocol.DecodeResponse(body)
	if err != nil {
		return protocol.Response{}, err
	}
	switch resp.Status {
	case protocol.StatusOK:
		return resp, nil
	case protocol.StatusOverloaded:
		return resp, engine.ErrOverloaded
	default:
		return resp, fmt.Errorf("server: %s", resp.Text)
	}
}

// PointQuery reports whether pt is stored.
func (c *TCP) PointQuery(pt geo.Point) (bool, error) {
	resp, err := c.roundTrip(protocol.Request{Op: protocol.OpPoint, Pt: pt})
	return resp.Bool, err
}

// WindowQuery returns the points inside win.
func (c *TCP) WindowQuery(win geo.Rect) ([]geo.Point, error) {
	resp, err := c.roundTrip(protocol.Request{Op: protocol.OpWindow, Win: win})
	return resp.Points, err
}

// KNN returns the k nearest stored points to q.
func (c *TCP) KNN(q geo.Point, k int) ([]geo.Point, error) {
	resp, err := c.roundTrip(protocol.Request{Op: protocol.OpKNN, Pt: q, K: k})
	return resp.Points, err
}

// Insert adds pt, reporting whether it triggered a rebuild.
func (c *TCP) Insert(pt geo.Point) (bool, error) {
	resp, err := c.roundTrip(protocol.Request{Op: protocol.OpInsert, Pt: pt})
	return resp.Bool, err
}

// Delete removes pt, reporting whether it triggered a rebuild.
func (c *TCP) Delete(pt geo.Point) (bool, error) {
	resp, err := c.roundTrip(protocol.Request{Op: protocol.OpDelete, Pt: pt})
	return resp.Bool, err
}

// Stats fetches the server's stats snapshot.
func (c *TCP) Stats() (engine.Stats, error) {
	resp, err := c.roundTrip(protocol.Request{Op: protocol.OpStats})
	if err != nil {
		return engine.Stats{}, err
	}
	var st engine.Stats
	err = json.Unmarshal([]byte(resp.Text), &st)
	return st, err
}
