// Package dataset generates the synthetic data sets used across the
// experiments. The paper evaluates on four real sets (OSM1, OSM2,
// TPC-H, NYC) and two synthetic ones (Uniform, Skewed). The real sets
// are not redistributable and weigh gigabytes, so this package provides
// distribution-matched surrogates (see DESIGN.md, "Substitutions"):
// the learned-index behaviour ELSI exercises depends only on the shape
// of the mapped key CDF, which the surrogates reproduce — heavy
// clustered skew for OSM, extreme street-grid skew for NYC, and a
// discrete lattice for TPC-H.
//
// All generators take an explicit seed so every experiment is
// reproducible.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"elsi/internal/geo"
)

// Names of the built-in data sets, mirroring Section VII-A.
const (
	Uniform = "uniform"
	Skewed  = "skewed"
	OSM1    = "osm1"
	OSM2    = "osm2"
	NYC     = "nyc"
	TPCH    = "tpch"
)

// All lists the built-in data set names in the order the paper's
// figures present them.
func All() []string {
	return []string{Uniform, Skewed, OSM1, OSM2, TPCH, NYC}
}

// Generate returns n points of the named data set inside the unit
// square, generated deterministically from seed.
func Generate(name string, n int, seed int64) ([]geo.Point, error) {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case Uniform:
		return UniformPoints(rng, n), nil
	case Skewed:
		return SkewedPoints(rng, n, 4), nil
	case OSM1:
		// North America surrogate: many clusters of very different
		// density plus sparse background (rural roads).
		return ClusterMix(rng, n, 256, 0.004, 0.06, 0.10), nil
	case OSM2:
		// South America surrogate: fewer, denser population centers.
		return ClusterMix(rng, n, 64, 0.003, 0.04, 0.05), nil
	case NYC:
		return NYCPoints(rng, n), nil
	case TPCH:
		return TPCHPoints(rng, n), nil
	default:
		return nil, fmt.Errorf("dataset: unknown data set %q", name)
	}
}

// MustGenerate is Generate for the built-in names, panicking on error.
func MustGenerate(name string, n int, seed int64) []geo.Point {
	pts, err := Generate(name, n, seed)
	if err != nil {
		panic(err)
	}
	return pts
}

// UniformPoints returns n points uniformly distributed in the unit
// square.
func UniformPoints(rng *rand.Rand, n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

// SkewedPoints returns n points where x is uniform and y is y_u^s for
// uniform y_u — the construction used by the paper's Skewed set
// (s = 4, following HRR).
func SkewedPoints(rng *rand.Rand, n int, s float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64(), Y: math.Pow(rng.Float64(), s)}
	}
	return pts
}

// ClusterMix returns n points drawn from a Gaussian-mixture with
// Zipf-weighted cluster sizes plus a uniform background fraction.
// sigmaMin/sigmaMax bound the per-cluster standard deviation.
func ClusterMix(rng *rand.Rand, n, clusters int, sigmaMin, sigmaMax, uniformFrac float64) []geo.Point {
	if clusters < 1 {
		clusters = 1
	}
	type cl struct {
		c     geo.Point
		sigma float64
	}
	cs := make([]cl, clusters)
	weights := make([]float64, clusters)
	total := 0.0
	for i := range cs {
		cs[i] = cl{
			c:     geo.Point{X: rng.Float64(), Y: rng.Float64()},
			sigma: sigmaMin + rng.Float64()*(sigmaMax-sigmaMin),
		}
		// Zipf-like weights give a few huge metros and a long tail.
		weights[i] = 1.0 / float64(i+1)
		total += weights[i]
	}
	// cumulative weights for sampling
	cum := make([]float64, clusters)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	pts := make([]geo.Point, n)
	for i := range pts {
		if rng.Float64() < uniformFrac {
			pts[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
			continue
		}
		u := rng.Float64()
		k := 0
		for k < clusters-1 && cum[k] < u {
			k++
		}
		c := cs[k]
		pts[i] = geo.UnitRect.Clamp(geo.Point{
			X: c.c.X + rng.NormFloat64()*c.sigma,
			Y: c.c.Y + rng.NormFloat64()*c.sigma,
		})
	}
	return pts
}

// NYCPoints returns the NYC-taxi surrogate: extremely tight clusters on
// a street-like lattice within a small sub-region of the space, the
// skew regime in which the paper observes Grid degrading (frequent
// block splits in dense cells).
func NYCPoints(rng *rand.Rand, n int) []geo.Point {
	// Manhattan-like core occupying ~8% of the space.
	core := geo.Rect{MinX: 0.42, MinY: 0.30, MaxX: 0.58, MaxY: 0.80}
	const streets = 160 // lattice resolution inside the core
	pts := make([]geo.Point, n)
	for i := range pts {
		if rng.Float64() < 0.05 {
			// airport trips and outliers
			pts[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
			continue
		}
		// pick a lattice intersection, denser toward the center
		u := math.Pow(rng.Float64(), 1.5)
		v := math.Pow(rng.Float64(), 1.2)
		sx := math.Floor(u*streets) / streets
		sy := math.Floor(v*streets) / streets
		jitter := 0.0008
		pts[i] = geo.UnitRect.Clamp(geo.Point{
			X: core.MinX + sx*core.Width() + rng.NormFloat64()*jitter,
			Y: core.MinY + sy*core.Height() + rng.NormFloat64()*jitter,
		})
	}
	return pts
}

// TPCHPoints returns the TPC-H surrogate: the (quantity, shipdate)
// columns of lineitem form a discrete lattice — quantity in 1..50,
// shipdate over ~2,500 distinct days — normalized to the unit square.
func TPCHPoints(rng *rand.Rand, n int) []geo.Point {
	const quantities = 50
	const days = 2466 // TPC-H shipdate range in days
	pts := make([]geo.Point, n)
	for i := range pts {
		q := 1 + rng.Intn(quantities)
		d := rng.Intn(days)
		pts[i] = geo.Point{
			X: float64(q) / float64(quantities),
			Y: float64(d) / float64(days),
		}
	}
	return pts
}

// KeysWithUniformDistance returns n sorted 1-D keys in [0,1] whose KS
// distance to the uniform distribution is approximately d in [0, 0.95].
// The method scorer is trained over a grid of such controlled
// distributions (Section VII-B2). The construction mixes a point mass
// of weight d near zero with a uniform remainder, which yields a KS
// distance of d up to O(1/n).
func KeysWithUniformDistance(rng *rand.Rand, n int, d float64) []float64 {
	if d < 0 {
		d = 0
	}
	if d > 0.95 {
		d = 0.95
	}
	keys := make([]float64, n)
	mass := int(d * float64(n))
	const delta = 1e-6
	for i := 0; i < mass; i++ {
		keys[i] = rng.Float64() * delta
	}
	for i := mass; i < n; i++ {
		keys[i] = delta + rng.Float64()*(1-delta)
	}
	sort.Float64s(keys)
	return keys
}

// PointsWithUniformDistance returns n 2-D points whose Z-key
// distribution deviates from uniform by roughly d: a d fraction of the
// points collapses into a tiny cluster at the origin cell while the
// rest stay uniform.
func PointsWithUniformDistance(rng *rand.Rand, n int, d float64) []geo.Point {
	if d < 0 {
		d = 0
	}
	if d > 0.95 {
		d = 0.95
	}
	mass := int(d * float64(n))
	pts := make([]geo.Point, n)
	const delta = 1e-4
	for i := 0; i < mass; i++ {
		pts[i] = geo.Point{X: rng.Float64() * delta, Y: rng.Float64() * delta}
	}
	for i := mass; i < n; i++ {
		pts[i] = geo.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	rng.Shuffle(n, func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return pts
}

// WindowsFromData returns count query windows following the data
// distribution (the paper's window workload): each window is centered
// on a random data point and covers areaFrac of the data space.
func WindowsFromData(rng *rand.Rand, pts []geo.Point, space geo.Rect, count int, areaFrac float64) []geo.Rect {
	if len(pts) == 0 || count <= 0 {
		return nil
	}
	side := math.Sqrt(areaFrac * space.Area())
	wins := make([]geo.Rect, count)
	for i := range wins {
		c := pts[rng.Intn(len(pts))]
		wins[i] = geo.Rect{
			MinX: c.X - side/2, MinY: c.Y - side/2,
			MaxX: c.X + side/2, MaxY: c.Y + side/2,
		}
	}
	return wins
}

// QueriesFromData returns count query points sampled from the data set
// (the paper's point and kNN workloads follow the data distribution).
func QueriesFromData(rng *rand.Rand, pts []geo.Point, count int) []geo.Point {
	if len(pts) == 0 || count <= 0 {
		return nil
	}
	qs := make([]geo.Point, count)
	for i := range qs {
		qs[i] = pts[rng.Intn(len(pts))]
	}
	return qs
}
