package dataset

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"elsi/internal/curve"
	"elsi/internal/geo"
	"elsi/internal/kstest"
)

func TestGenerateAllNames(t *testing.T) {
	for _, name := range All() {
		pts, err := Generate(name, 1000, 1)
		if err != nil {
			t.Fatalf("Generate(%s): %v", name, err)
		}
		if len(pts) != 1000 {
			t.Fatalf("Generate(%s) returned %d points", name, len(pts))
		}
		for _, p := range pts {
			if !geo.UnitRect.Contains(p) {
				t.Fatalf("Generate(%s) point %v outside unit square", name, p)
			}
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope", 10, 1); err == nil {
		t.Error("expected error for unknown data set")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(OSM1, 500, 7)
	b := MustGenerate(OSM1, 500, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs across same-seed generations", i)
		}
	}
	c := MustGenerate(OSM1, 500, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical data")
	}
}

// zKeyDistToUniform measures the KS distance of a data set's Z-key
// distribution from uniform, the quantity ELSI uses to characterize
// distributions.
func zKeyDistToUniform(pts []geo.Point) float64 {
	keys := make([]float64, len(pts))
	for i, p := range pts {
		keys[i] = float64(curve.ZEncode(p, geo.UnitRect))
	}
	sort.Float64s(keys)
	return kstest.DistanceToUniform(keys, 0, float64(curve.MaxKey))
}

func TestDistributionOrdering(t *testing.T) {
	// The surrogates must reproduce the relative skew ordering the
	// experiments rely on: Uniform is the least skewed; NYC the most.
	n := 20000
	uni := zKeyDistToUniform(MustGenerate(Uniform, n, 1))
	skw := zKeyDistToUniform(MustGenerate(Skewed, n, 1))
	nyc := zKeyDistToUniform(MustGenerate(NYC, n, 1))
	if uni > 0.05 {
		t.Errorf("uniform dist-to-uniform = %v, want ~0", uni)
	}
	if skw <= uni {
		t.Errorf("skewed (%v) not more skewed than uniform (%v)", skw, uni)
	}
	// NYC is spatially extreme but its central cluster spreads over
	// several Morton blocks, so its Z-key KS distance is moderate; it
	// must still be clearly non-uniform.
	if nyc < 5*uni || nyc < 0.1 {
		t.Errorf("nyc dist-to-uniform = %v (uniform %v), want clearly skewed", nyc, uni)
	}
}

func TestSkewedPointsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := SkewedPoints(rng, 10000, 4)
	// E[y] = E[u^4] = 1/5 for the skewed set; E[x] = 1/2.
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	mx, my := sx/float64(len(pts)), sy/float64(len(pts))
	if math.Abs(mx-0.5) > 0.02 {
		t.Errorf("mean x = %v, want ~0.5", mx)
	}
	if math.Abs(my-0.2) > 0.02 {
		t.Errorf("mean y = %v, want ~0.2", my)
	}
}

func TestTPCHLattice(t *testing.T) {
	pts := MustGenerate(TPCH, 5000, 1)
	distinctX := map[float64]bool{}
	for _, p := range pts {
		distinctX[p.X] = true
	}
	if len(distinctX) > 50 {
		t.Errorf("TPC-H surrogate has %d distinct x values, want <= 50 (quantity lattice)", len(distinctX))
	}
}

func TestClusterMixFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := ClusterMix(rng, 10000, 8, 0.001, 0.002, 0.0)
	// with no uniform background, nearly all points sit within a few
	// sigma of only 8 centers: the bounding boxes of many random pairs
	// should be tiny compared to uniform data.
	r := geo.BoundingRect(pts[:100])
	_ = r // sanity of generation only; detailed shape asserted below
	if len(pts) != 10000 {
		t.Fatalf("got %d points", len(pts))
	}
	if got := zKeyDistToUniform(pts); got < 0.2 {
		t.Errorf("pure cluster mix dist-to-uniform = %v, want skewed", got)
	}
}

func TestKeysWithUniformDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9} {
		keys := KeysWithUniformDistance(rng, 20000, d)
		if !sort.Float64sAreSorted(keys) {
			t.Fatalf("keys not sorted for d=%v", d)
		}
		got := kstest.DistanceToUniform(keys, 0, 1)
		if math.Abs(got-d) > 0.03 {
			t.Errorf("d=%v: measured distance %v", d, got)
		}
	}
}

func TestKeysWithUniformDistanceClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys := KeysWithUniformDistance(rng, 1000, 2.0) // clamped to 0.95
	got := kstest.DistanceToUniform(keys, 0, 1)
	if got > 0.97 {
		t.Errorf("clamped distance = %v", got)
	}
	keys = KeysWithUniformDistance(rng, 1000, -1) // clamped to 0
	got = kstest.DistanceToUniform(keys, 0, 1)
	if got > 0.1 {
		t.Errorf("negative-d distance = %v, want ~0", got)
	}
}

func TestPointsWithUniformDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lo := zKeyDistToUniform(PointsWithUniformDistance(rng, 20000, 0.1))
	hi := zKeyDistToUniform(PointsWithUniformDistance(rng, 20000, 0.7))
	if hi <= lo {
		t.Errorf("distance not monotone: d=0.1 -> %v, d=0.7 -> %v", lo, hi)
	}
	if math.Abs(hi-0.7) > 0.1 {
		t.Errorf("d=0.7 measured %v", hi)
	}
}

func TestWindowsFromData(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := UniformPoints(rng, 1000)
	wins := WindowsFromData(rng, pts, geo.UnitRect, 50, 0.0001)
	if len(wins) != 50 {
		t.Fatalf("got %d windows", len(wins))
	}
	for _, w := range wins {
		if math.Abs(w.Area()-0.0001) > 1e-12 {
			t.Fatalf("window area = %v, want 0.0001", w.Area())
		}
	}
	if WindowsFromData(rng, nil, geo.UnitRect, 5, 0.01) != nil {
		t.Error("empty data should yield no windows")
	}
}

func TestQueriesFromData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := UniformPoints(rng, 100)
	qs := QueriesFromData(rng, pts, 30)
	if len(qs) != 30 {
		t.Fatalf("got %d queries", len(qs))
	}
	set := map[geo.Point]bool{}
	for _, p := range pts {
		set[p] = true
	}
	for _, q := range qs {
		if !set[q] {
			t.Fatalf("query %v is not a data point", q)
		}
	}
	if QueriesFromData(rng, nil, 5) != nil {
		t.Error("empty data should yield no queries")
	}
}
