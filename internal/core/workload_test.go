package core

import (
	"math"
	"testing"

	"elsi/internal/methods"
	"elsi/internal/scorer"
)

func TestDeriveWorkload(t *testing.T) {
	// Pure reads: λ at the floor, wQ at the ceiling.
	p := DeriveWorkload(80, 10, 10, 0, 0)
	if !p.Derived || p.Samples != 100 {
		t.Fatalf("profile = %+v", p)
	}
	if math.Abs(p.Lambda-0.2) > 1e-12 || p.WQ != 2 {
		t.Errorf("pure-read λ=%v wQ=%v, want 0.2, 2", p.Lambda, p.WQ)
	}
	if p.PointW != 0.8 || p.WindowW != 0.1 || p.KNNW != 0.1 {
		t.Errorf("read mix = %v/%v/%v", p.PointW, p.WindowW, p.KNNW)
	}

	// Pure writes: λ near 1, wQ at the floor.
	p = DeriveWorkload(0, 0, 0, 500, 500)
	if math.Abs(p.Lambda-0.95) > 1e-12 || p.WQ != 0.25 || p.WriteFrac != 1 {
		t.Errorf("pure-write λ=%v wQ=%v writeFrac=%v", p.Lambda, p.WQ, p.WriteFrac)
	}

	// Monotone in write fraction.
	lo := DeriveWorkload(90, 0, 0, 10, 0).Lambda
	hi := DeriveWorkload(10, 0, 0, 90, 0).Lambda
	if lo >= hi {
		t.Errorf("λ not monotone in write fraction: %v >= %v", lo, hi)
	}

	// No traffic: never Derived, never applied.
	if p = DeriveWorkload(0, 0, 0, 0, 0); p.Derived {
		t.Errorf("empty profile marked Derived: %+v", p)
	}
}

func workloadTestSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(Config{
		Trainer:  testTrainer(),
		Selector: SelectorFixed,
		Fixed:    methods.NameOG,
		Lambda:   0.5, LambdaSet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestApplyWorkloadGates(t *testing.T) {
	s := workloadTestSystem(t)

	// Not derived → rejected.
	if s.ApplyWorkload(WorkloadProfile{Lambda: 0.9, WQ: 1, Samples: 10000}) {
		t.Fatal("adopted an underived profile")
	}
	// Too few samples → rejected.
	small := DeriveWorkload(10, 0, 0, 10, 0)
	if s.ApplyWorkload(small) {
		t.Fatal("adopted a profile below the sample gate")
	}
	// Within hysteresis of the configured (λ=0.5, wQ=1): a balanced
	// mix derives λ = 0.2 + 0.75·0.5 = 0.575 (Δ 0.075 < 0.1) and
	// wQ = 2·0.5 = 1.0 (Δ 0) → rejected.
	same := DeriveWorkload(500, 0, 0, 500, 0)
	if s.ApplyWorkload(same) {
		t.Fatal("adopted a profile inside the hysteresis band")
	}
	if got := s.EffectiveLambda(); got != 0.5 {
		t.Fatalf("EffectiveLambda = %v, want configured 0.5", got)
	}

	// A real divergence → adopted and visible.
	writeHeavy := DeriveWorkload(100, 0, 0, 700, 200)
	if !s.ApplyWorkload(writeHeavy) {
		t.Fatal("rejected a diverged profile")
	}
	if got := s.EffectiveLambda(); math.Abs(got-writeHeavy.Lambda) > 1e-12 {
		t.Fatalf("EffectiveLambda = %v, want %v", got, writeHeavy.Lambda)
	}
	if w := s.Workload(); !w.Derived || w.Samples != 1000 {
		t.Fatalf("Workload = %+v", w)
	}

	// Re-offering the same mix flaps nothing.
	if s.ApplyWorkload(writeHeavy) {
		t.Fatal("re-adopted an identical profile")
	}
	applied, skipped := s.WorkloadCounts()
	if applied != 1 || skipped != 4 {
		t.Fatalf("counts = %d applied, %d skipped; want 1, 4", applied, skipped)
	}
}

func TestWorkloadConfigValidation(t *testing.T) {
	base := Config{Trainer: testTrainer(), Selector: SelectorFixed, Fixed: methods.NameOG}

	bad := base
	bad.LambdaHysteresis = -1
	if _, err := NewSystem(bad); err == nil {
		t.Error("negative hysteresis accepted")
	}
	bad = base
	bad.WorkloadMinSamples = -1
	if _, err := NewSystem(bad); err == nil {
		t.Error("negative min samples accepted")
	}
	bad = base
	bad.Workload = WorkloadProfile{Derived: true, Lambda: 1.5, WQ: 1}
	if _, err := NewSystem(bad); err == nil {
		t.Error("out-of-range workload λ accepted")
	}
	bad = base
	bad.Workload = WorkloadProfile{Derived: true, Lambda: 0.5, WQ: 0}
	if _, err := NewSystem(bad); err == nil {
		t.Error("non-positive workload wQ accepted")
	}

	// A configured profile seeds the live preference.
	good := base
	good.Workload = DeriveWorkload(0, 0, 0, 100, 100)
	s, err := NewSystem(good)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.EffectiveLambda(); math.Abs(got-0.95) > 1e-12 {
		t.Errorf("seeded EffectiveLambda = %v, want 0.95", got)
	}
}

// TestWorkloadRerank trains a scorer on the heuristic curves and checks
// that adopting a diverged profile actually changes the ladder's first
// rung — the end-to-end effect adaptivity exists for.
func TestWorkloadRerank(t *testing.T) {
	sc, err := scorer.Train(scorer.HeuristicSamples(), scorer.Config{Seed: 1, Epochs: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Pure query preference vs pure build preference must disagree on
	// the heuristic curves (RL/CL query wins vs MR/SP build wins).
	sel := &scorer.Selector{Scorer: sc, Lambda: 0, WQ: 1}
	queryBest := sel.Select(100000, 0.8)
	sel.Lambda = 1
	buildBest := sel.Select(100000, 0.8)
	if queryBest == buildBest {
		t.Skipf("heuristic scorer ranks %q best at both extremes; no divergence to observe", queryBest)
	}

	s, err := NewSystem(Config{
		Trainer:  testTrainer(),
		Selector: SelectorLearned,
		Scorer:   sc,
		Lambda:   0, LambdaSet: true, // start pure-query
	})
	if err != nil {
		t.Fatal(err)
	}
	d := prepared("uniform", 4000, 1)

	before := s.ladder(d)[0]
	// A write-storm profile: λ jumps to ~0.95.
	if !s.ApplyWorkload(DeriveWorkload(0, 0, 0, 5000, 5000)) {
		t.Fatal("write-storm profile rejected")
	}
	after := s.ladder(d)[0]
	if before == after {
		t.Logf("note: first rung %q unchanged at n=4000 (rankings may still differ elsewhere)", before)
	}
	// At minimum the effective preference must have moved.
	if got := s.EffectiveLambda(); math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("EffectiveLambda = %v, want 0.95", got)
	}
}
