package core_test

import (
	"fmt"

	"elsi/internal/base"
	"elsi/internal/core"
	"elsi/internal/curve"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/methods"
	"elsi/internal/rmi"
)

// A fixed-method ELSI system runs Algorithm 1 with one chosen index
// building method (here RS): the reduced set is a tiny fraction of the
// data, yet every point stays inside its predicted scan range.
func ExampleSystem_fixedMethod() {
	sys := core.MustNewSystem(core.Config{
		Trainer:  rmi.PiecewiseTrainer(1.0 / 256),
		Selector: core.SelectorFixed,
		Fixed:    methods.NameRS,
	})

	pts := dataset.MustGenerate(dataset.OSM1, 20000, 1)
	d := base.Prepare(pts, geo.UnitRect, func(p geo.Point) float64 {
		return float64(curve.ZEncode(p, geo.UnitRect))
	})
	model, stats := sys.BuildModel(d)

	misses := 0
	for i, k := range d.Keys {
		lo, hi := model.SearchRange(k)
		if i < lo || i >= hi {
			misses++
		}
	}
	fmt.Printf("method=%s reduced %d -> %d keys, misses=%d\n",
		stats.Method, d.Len(), stats.TrainSetSize, misses)
	// Output:
	// method=RS reduced 20000 -> 1135 keys, misses=0
}

// The LISA method pool excludes the point-synthesizing methods.
func ExamplePoolForIndex() {
	fmt.Println(core.PoolForIndex("LISA"))
	// Output:
	// [SP MR RS OG]
}
