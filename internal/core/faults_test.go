package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/faults"
	"elsi/internal/geo"
	"elsi/internal/indextest"
	"elsi/internal/methods"
	"elsi/internal/rmi"
	"elsi/internal/zm"
)

// checkCovers asserts the query-correctness invariant of every build
// result: the model's search range contains the true rank of each key,
// so predict-and-scan point queries cannot miss.
func checkCovers(t *testing.T, m *rmi.Bounded, d *base.SortedData) {
	t.Helper()
	if m == nil {
		t.Fatal("nil model")
	}
	step := d.Len()/64 + 1
	for i := 0; i < d.Len(); i += step {
		lo, hi := m.SearchRange(d.Keys[i])
		if i < lo || i >= hi {
			t.Fatalf("rank %d outside search range [%d, %d)", i, lo, hi)
		}
	}
}

func fixedSystem(t *testing.T, method string, timeout time.Duration) *System {
	t.Helper()
	s, err := NewSystem(Config{
		Trainer:      testTrainer(),
		Selector:     SelectorFixed,
		Fixed:        method,
		Seed:         1,
		Workers:      2,
		BuildTimeout: timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLadderFallsBackEveryMethodEveryMode is the acceptance matrix of
// the degradation ladder: for each pool method and each failure mode
// (injected error, injected panic, blown per-attempt budget), the
// selected method fails, the build falls to a lower rung, and the
// returned model still answers every query correctly.
func TestLadderFallsBackEveryMethodEveryMode(t *testing.T) {
	d := prepared(dataset.OSM1, 3000, 7)
	for _, method := range methods.PoolNames() {
		for _, mode := range []faults.Mode{faults.ModeError, faults.ModePanic, faults.ModeBudget} {
			t.Run(method+"/"+mode.String(), func(t *testing.T) {
				defer faults.Reset()
				point := "build/" + method
				faults.Enable(point, faults.Fault{Mode: mode})
				s := fixedSystem(t, method, 50*time.Millisecond)
				m, stats := s.BuildModel(d)
				if faults.Hits(point) == 0 {
					t.Fatalf("fault at %s never fired", point)
				}
				if stats.Selected != method {
					t.Errorf("stats.Selected = %q, want %q", stats.Selected, method)
				}
				if stats.Fallbacks < 1 {
					t.Errorf("stats.Fallbacks = %d, want >= 1", stats.Fallbacks)
				}
				if stats.Method == method {
					t.Errorf("stats.Method is the failed method %q", method)
				}
				if got := s.Fallbacks()[method]; got != 1 {
					t.Errorf("Fallbacks()[%s] = %d, want 1", method, got)
				}
				if got := s.Selections()[method]; got != 1 {
					t.Errorf("Selections()[%s] = %d, want 1", method, got)
				}
				checkCovers(t, m, d)
			})
		}
	}
}

// TestLadderTerminalRung arms every build injection point, so the
// selected method, every other pool method, RSP, and OG all fail; the
// terminal piecewise rung must still produce a correct model.
func TestLadderTerminalRung(t *testing.T) {
	defer faults.Reset()
	for _, name := range append(methods.PoolNames(), methods.NameRSP) {
		faults.Enable("build/"+name, faults.Fault{Mode: faults.ModeError})
	}
	d := prepared(dataset.Uniform, 2000, 3)
	s := fixedSystem(t, methods.NameSP, 0)
	m, stats := s.BuildModel(d)
	if stats.Method != methodPW {
		t.Fatalf("stats.Method = %q, want %q", stats.Method, methodPW)
	}
	if stats.Selected != methods.NameSP {
		t.Errorf("stats.Selected = %q, want SP", stats.Selected)
	}
	if stats.Fallbacks != 7 {
		t.Errorf("stats.Fallbacks = %d, want 7 (6 pool + RSP)", stats.Fallbacks)
	}
	checkCovers(t, m, d)
}

// TestLadderBoundsScanFault injects a one-shot failure into the shared
// error-bound scan: the first rung's scan fails, the second rung's
// succeeds.
func TestLadderBoundsScanFault(t *testing.T) {
	defer faults.Reset()
	faults.Enable("bounds/scan", faults.Fault{Mode: faults.ModeError, Times: 1})
	d := prepared(dataset.Uniform, 2000, 5)
	s := fixedSystem(t, methods.NameSP, 0)
	m, stats := s.BuildModel(d)
	if stats.Fallbacks != 1 {
		t.Errorf("stats.Fallbacks = %d, want 1", stats.Fallbacks)
	}
	if got := s.Fallbacks()[methods.NameSP]; got != 1 {
		t.Errorf("Fallbacks()[SP] = %d, want 1", got)
	}
	checkCovers(t, m, d)
}

// TestBuildModelCtxParentCancellation distinguishes a dead parent
// context from a method failure: the ladder must stop, not burn the
// remaining rungs.
func TestBuildModelCtxParentCancellation(t *testing.T) {
	d := prepared(dataset.Uniform, 1000, 2)
	s := fixedSystem(t, methods.NameSP, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, _, err := s.BuildModelCtx(ctx, d)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m != nil {
		t.Fatal("cancelled build returned a model")
	}
	if got := s.Fallbacks()[methods.NameSP]; got != 0 {
		t.Errorf("cancellation counted as fallback: %d", got)
	}
}

// TestNoFaultsNoFallbacks pins the fault-free path: the selected
// method builds, no fallback counters move, Selected == Method.
func TestNoFaultsNoFallbacks(t *testing.T) {
	d := prepared(dataset.Uniform, 2000, 9)
	s := fixedSystem(t, methods.NameSP, 0)
	m, stats := s.BuildModel(d)
	if stats.Selected != methods.NameSP || stats.Method != methods.NameSP {
		t.Errorf("Selected/Method = %q/%q, want SP/SP", stats.Selected, stats.Method)
	}
	if stats.Fallbacks != 0 {
		t.Errorf("stats.Fallbacks = %d, want 0", stats.Fallbacks)
	}
	if len(s.Fallbacks()) != 0 {
		t.Errorf("Fallbacks() = %v, want empty", s.Fallbacks())
	}
	checkCovers(t, m, d)
}

// TestQueriesCorrectUnderFaults builds a full ZM index through a
// fault-injected ELSI system and runs the standard conformance suite
// against brute force: point, window, and kNN queries must all be
// exact even though the selected method panicked and the build fell
// back.
func TestQueriesCorrectUnderFaults(t *testing.T) {
	defer faults.Reset()
	faults.Enable("build/"+methods.NameSP, faults.Fault{Mode: faults.ModePanic})
	s := fixedSystem(t, methods.NameSP, 0)
	ix := zm.New(zm.Config{Space: geo.UnitRect, Builder: s, Fanout: 4, Workers: 2})
	pts := dataset.MustGenerate(dataset.OSM1, 4000, 11)
	indextest.Conformance(t, ix, pts, 11, 1.0, 1.0)
	if faults.Hits("build/"+methods.NameSP) == 0 {
		t.Fatal("fault never fired")
	}
	if s.Fallbacks()[methods.NameSP] == 0 {
		t.Fatal("no fallback recorded")
	}
}

// TestBuildCtxTimeoutZM exercises the index-level budget: a ZM build
// whose every model attempt blocks on its budget must still terminate
// (the ladder ends in the budget-free piecewise rung) and stay exact.
func TestBuildCtxTimeoutZM(t *testing.T) {
	defer faults.Reset()
	// Block SP on its budget every time; the ladder absorbs it.
	faults.Enable("build/"+methods.NameSP, faults.Fault{Mode: faults.ModeBudget})
	s := fixedSystem(t, methods.NameSP, 20*time.Millisecond)
	ix := zm.New(zm.Config{Space: geo.UnitRect, Builder: s, Fanout: 1, Workers: 2})
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 13)
	indextest.Conformance(t, ix, pts, 13, 1.0, 1.0)
}
