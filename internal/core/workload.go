package core

import (
	"fmt"
	"math"
)

// WorkloadProfile is a derived summary of observed traffic, in the
// terms the method scorer understands: a preference factor λ (build
// weight, Equation 2), a query-frequency weight wQ, and the read-mix
// composition. Profiles are produced by DeriveWorkload from monitor
// counter deltas and fed to a System via ApplyWorkload, which re-scores
// the method pool on the next build with the live preference instead of
// the config-time constant.
type WorkloadProfile struct {
	// Lambda is the derived build/query preference in [0, 1]: a
	// write-heavy mix rebuilds often, so build cost weighs more.
	Lambda float64 `json:"lambda"`
	// WQ is the derived query-frequency weight.
	WQ float64 `json:"wq"`
	// PointW, WindowW, KNNW are the fractions of read traffic by query
	// type (summing to 1 when there are reads).
	PointW  float64 `json:"point_w"`
	WindowW float64 `json:"window_w"`
	KNNW    float64 `json:"knn_w"`
	// WriteFrac is the fraction of all traffic that mutates.
	WriteFrac float64 `json:"write_frac"`
	// Samples is the operation count the profile was derived from —
	// the confidence gate for ApplyWorkload.
	Samples int64 `json:"samples"`
	// Derived marks a profile produced from real traffic; the zero
	// value (Derived false) never overrides configuration.
	Derived bool `json:"derived"`
}

// DeriveWorkload turns raw operation counts (typically a
// monitor.Snapshot delta) into a WorkloadProfile.
//
// λ rises linearly with the write fraction from 0.2 (pure reads: query
// cost is everything, but a floor keeps pathological build choices off
// the table) to 0.95 (pure writes: the index is rebuilt far more often
// than it is probed). wQ scales with the read fraction around the
// paper's default of 1.0 at a balanced mix, clamped to [0.25, 2].
func DeriveWorkload(points, windows, knns, inserts, deletes int64) WorkloadProfile {
	reads := points + windows + knns
	writes := inserts + deletes
	total := reads + writes
	if total <= 0 {
		return WorkloadProfile{}
	}
	writeFrac := float64(writes) / float64(total)
	readFrac := 1 - writeFrac
	p := WorkloadProfile{
		Lambda:    0.2 + 0.75*writeFrac,
		WQ:        clamp(2*readFrac, 0.25, 2),
		WriteFrac: writeFrac,
		Samples:   total,
		Derived:   true,
	}
	if reads > 0 {
		p.PointW = float64(points) / float64(reads)
		p.WindowW = float64(windows) / float64(reads)
		p.KNNW = float64(knns) / float64(reads)
	}
	return p
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Workload defaults; see Config.
const (
	// DefaultLambdaHysteresis is the minimum |λ_new − λ_current| (or
	// equivalent wQ move) required before a derived profile replaces
	// the active one.
	DefaultLambdaHysteresis = 0.1
	// DefaultWorkloadMinSamples is the minimum operation count a
	// profile must be derived from before it is trusted.
	DefaultWorkloadMinSamples = 256
)

// validateWorkload checks the workload-related Config fields and fills
// defaults; called from NewSystem.
func validateWorkload(cfg *Config) error {
	if cfg.LambdaHysteresis < 0 {
		return fmt.Errorf("core: negative LambdaHysteresis %v", cfg.LambdaHysteresis)
	}
	//lint:ignore floateq an unset config field is exactly the zero value
	if cfg.LambdaHysteresis == 0 {
		cfg.LambdaHysteresis = DefaultLambdaHysteresis
	}
	if cfg.WorkloadMinSamples < 0 {
		return fmt.Errorf("core: negative WorkloadMinSamples %d", cfg.WorkloadMinSamples)
	}
	if cfg.WorkloadMinSamples == 0 {
		cfg.WorkloadMinSamples = DefaultWorkloadMinSamples
	}
	if cfg.Workload.Derived {
		if math.IsNaN(cfg.Workload.Lambda) || cfg.Workload.Lambda < 0 || cfg.Workload.Lambda > 1 {
			return fmt.Errorf("core: workload Lambda %v outside [0, 1]", cfg.Workload.Lambda)
		}
		if cfg.Workload.WQ <= 0 {
			return fmt.Errorf("core: workload WQ %v must be positive", cfg.Workload.WQ)
		}
	}
	return nil
}

// ApplyWorkload offers a derived profile to the system. It is adopted —
// and used by every subsequent build's method ranking — only when it
// clears two gates: enough samples (Config.WorkloadMinSamples), and a
// preference move of at least Config.LambdaHysteresis in λ (or the
// same relative move in wQ) versus the active preference. The
// hysteresis keeps selection from flapping between methods on workload
// noise: a profile that would re-rank the pool identically is not worth
// a churn of the counters, and one derived from a near-identical mix
// cannot re-rank it at all. Returns whether the profile was adopted.
func (s *System) ApplyWorkload(p WorkloadProfile) bool {
	if !p.Derived || p.Samples < s.cfg.WorkloadMinSamples {
		s.mu.Lock()
		s.wlSkipped++
		s.mu.Unlock()
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	curLam, curWQ := s.prefLocked()
	dLam := math.Abs(p.Lambda - curLam)
	// wQ spans [0.25, 2]; compare its move on a log scale so a 0.25→0.5
	// shift weighs like 1→2.
	dWQ := math.Abs(math.Log2(p.WQ) - math.Log2(curWQ))
	if dLam < s.cfg.LambdaHysteresis && dWQ < 2*s.cfg.LambdaHysteresis {
		s.wlSkipped++
		return false
	}
	s.workload = p
	s.wlApplied++
	return true
}

// prefLocked returns the effective (λ, wQ): the adopted workload's if
// one is active, the configured constants otherwise. Caller holds s.mu.
func (s *System) prefLocked() (lambda, wq float64) {
	if s.workload.Derived {
		return s.workload.Lambda, s.workload.WQ
	}
	return s.cfg.Lambda, s.cfg.WQ
}

// Workload returns the active profile (zero value when none has been
// adopted and none was configured).
func (s *System) Workload() WorkloadProfile {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workload
}

// WorkloadCounts reports how many ApplyWorkload offers were adopted and
// how many were rejected by the sample or hysteresis gates.
func (s *System) WorkloadCounts() (applied, skipped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wlApplied, s.wlSkipped
}

// EffectiveLambda returns the preference factor the next build will
// rank methods with (the adopted workload's λ, or the configured one).
func (s *System) EffectiveLambda() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	lam, _ := s.prefLocked()
	return lam
}
