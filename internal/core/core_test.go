package core

import (
	"testing"

	"elsi/internal/base"
	"elsi/internal/curve"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/indextest"
	"elsi/internal/lisa"
	"elsi/internal/methods"
	"elsi/internal/mlindex"
	"elsi/internal/rmi"
	"elsi/internal/rsmi"
	"elsi/internal/scorer"
	"elsi/internal/zm"
)

func testTrainer() rmi.Trainer { return rmi.PiecewiseTrainer(1.0 / 256) }

// trainTinyScorer trains a quick scorer over a small ground truth so
// SelectorLearned tests stay fast.
func trainTinyScorer(t testing.TB) *scorer.Scorer {
	t.Helper()
	gen := scorer.GenConfig{
		Cardinalities: []int{500, 5000},
		Dists:         []float64{0, 0.4, 0.8},
		Trainer:       testTrainer(),
		Queries:       20,
		Seed:          1,
	}
	sc, samples, err := TrainScorer(gen, scorer.Config{Hidden: 12, Epochs: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	return sc
}

func prepared(name string, n int, seed int64) *base.SortedData {
	pts := dataset.MustGenerate(name, n, seed)
	return base.Prepare(pts, geo.UnitRect, func(p geo.Point) float64 {
		return float64(curve.ZEncode(p, geo.UnitRect))
	})
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Error("missing trainer accepted")
	}
	if _, err := NewSystem(Config{Trainer: testTrainer(), Selector: SelectorLearned}); err == nil {
		t.Error("learned selector without scorer accepted")
	}
	if _, err := NewSystem(Config{Trainer: testTrainer(), Selector: SelectorFixed, Fixed: "nope"}); err == nil {
		t.Error("fixed method outside pool accepted")
	}
	if _, err := NewSystem(Config{Trainer: testTrainer(), Lambda: 1.5, LambdaSet: true}); err == nil {
		t.Error("lambda outside [0, 1] accepted")
	}
	if _, err := NewSystem(Config{Trainer: testTrainer(), Lambda: -0.1, LambdaSet: true}); err == nil {
		t.Error("negative lambda accepted")
	}
}

// Regression: an explicit λ = 0 (pure query-cost optimization, the
// left end of the Fig. 9 sweep) used to be silently replaced by the
// 0.8 default; LambdaSet must make it stick, and the default must
// apply to every selector kind, not just SelectorLearned.
func TestLambdaZeroHonored(t *testing.T) {
	s, err := NewSystem(Config{Trainer: testTrainer(), Lambda: 0, LambdaSet: true, Selector: SelectorRandom, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Lambda(); got != 0 {
		t.Errorf("explicit Lambda 0 became %v", got)
	}
	for _, cfg := range []Config{
		{Trainer: testTrainer(), Selector: SelectorRandom, Seed: 1},
		{Trainer: testTrainer(), Selector: SelectorFixed, Fixed: methods.NameSP, Seed: 1},
	} {
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Lambda(); got != 0.8 {
			t.Errorf("unset Lambda default = %v for selector %v, want 0.8", got, cfg.Selector)
		}
	}
}

func TestFixedSelectorDelegates(t *testing.T) {
	s := MustNewSystem(Config{Trainer: testTrainer(), Selector: SelectorFixed, Fixed: methods.NameSP})
	d := prepared(dataset.OSM1, 5000, 1)
	m, stats := s.BuildModel(d)
	if stats.Method != methods.NameSP {
		t.Errorf("method = %s", stats.Method)
	}
	for i, k := range d.Keys {
		lo, hi := m.SearchRange(k)
		if i < lo || i >= hi {
			t.Fatalf("key %d outside range", i)
		}
	}
	if got := s.Selections()[methods.NameSP]; got != 1 {
		t.Errorf("selections = %v", s.Selections())
	}
}

func TestRandomSelectorCoversPool(t *testing.T) {
	s := MustNewSystem(Config{Trainer: testTrainer(), Selector: SelectorRandom, Seed: 3,
		Pool: []string{methods.NameSP, methods.NameRS, methods.NameMR}})
	d := prepared(dataset.Uniform, 1000, 2)
	for i := 0; i < 30; i++ {
		s.BuildModel(d)
	}
	sel := s.Selections()
	if len(sel) < 2 {
		t.Errorf("random selector barely varies: %v", sel)
	}
	for m := range sel {
		if m != methods.NameSP && m != methods.NameRS && m != methods.NameMR {
			t.Errorf("selected method %s outside pool", m)
		}
	}
	s.ResetSelections()
	if len(s.Selections()) != 0 {
		t.Error("ResetSelections failed")
	}
}

func TestLearnedSelectorEndToEnd(t *testing.T) {
	sc := trainTinyScorer(t)
	s := MustNewSystem(Config{
		Trainer: testTrainer(), Selector: SelectorLearned, Scorer: sc,
		Lambda: 0.8, Seed: 1,
	})
	d := prepared(dataset.OSM1, 8000, 3)
	m, stats := s.BuildModel(d)
	if stats.Method == "" {
		t.Fatal("no method recorded")
	}
	for i, k := range d.Keys {
		lo, hi := m.SearchRange(k)
		if i < lo || i >= hi {
			t.Fatalf("key %d outside range with method %s", i, stats.Method)
		}
	}
}

// TestELSIIntoAllFourIndices is the headline integration test:
// contribution (3) of the paper — ELSI plugged into ZM, ML, RSMI, and
// LISA, with exact point queries everywhere and the paper's recall
// floors for the approximate indices.
func TestELSIIntoAllFourIndices(t *testing.T) {
	sc := trainTinyScorer(t)
	pts := dataset.MustGenerate(dataset.OSM1, 4000, 4)
	mk := func(pool []string) *System {
		return MustNewSystem(Config{
			Trainer: testTrainer(), Selector: SelectorLearned, Scorer: sc,
			Lambda: 0.8, Seed: 1, Pool: pool,
		})
	}
	t.Run("ZM-F", func(t *testing.T) {
		ix := zm.New(zm.Config{Space: geo.UnitRect, Builder: mk(nil), Fanout: 4})
		indextest.Conformance(t, ix, pts, 50, 1.0, 1.0)
	})
	t.Run("ML-F", func(t *testing.T) {
		ix := mlindex.New(mlindex.Config{Space: geo.UnitRect, Builder: mk(nil), Refs: 8, Seed: 1})
		indextest.Conformance(t, ix, pts, 51, 1.0, 1.0)
	})
	t.Run("RSMI-F", func(t *testing.T) {
		ix := rsmi.New(rsmi.Config{Space: geo.UnitRect, Builder: mk(nil), Fanout: 4, LeafCap: 600})
		indextest.Conformance(t, ix, pts, 52, 0.9, 0.85)
	})
	t.Run("LISA-F", func(t *testing.T) {
		ix := lisa.New(lisa.Config{Space: geo.UnitRect, Builder: mk(PoolForIndex("LISA"))})
		indextest.Conformance(t, ix, pts, 53, 0.9, 0.85)
	})
}

func TestPoolForIndex(t *testing.T) {
	full := PoolForIndex("ZM")
	if len(full) != 6 {
		t.Errorf("ZM pool = %v", full)
	}
	lp := PoolForIndex("LISA")
	for _, m := range lp {
		if m == methods.NameCL || m == methods.NameRL {
			t.Errorf("LISA pool contains %s", m)
		}
	}
	hasMR := false
	for _, m := range lp {
		if m == methods.NameMR {
			hasMR = true
		}
	}
	if !hasMR {
		t.Error("LISA pool should keep MR")
	}
}

func TestBuildersOverride(t *testing.T) {
	custom := &methods.SP{Rho: 0.5, Trainer: testTrainer()}
	s := MustNewSystem(Config{
		Trainer: testTrainer(), Selector: SelectorFixed, Fixed: methods.NameSP,
		Builders: map[string]base.ModelBuilder{methods.NameSP: custom},
	})
	d := prepared(dataset.Uniform, 1000, 5)
	_, stats := s.BuildModel(d)
	// rho 0.5 keeps ~half the keys, unlike the default 0.0001
	if stats.TrainSetSize < 400 {
		t.Errorf("override ignored: train set %d", stats.TrainSetSize)
	}
}

func TestRandomSelectorConcurrencySafe(t *testing.T) {
	s := MustNewSystem(Config{Trainer: testTrainer(), Selector: SelectorRandom, Seed: 1})
	d := prepared(dataset.Uniform, 500, 6)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 10; i++ {
				s.BuildModel(d)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	total := 0
	for _, c := range s.Selections() {
		total += c
	}
	if total != 40 {
		t.Errorf("selection count = %d, want 40", total)
	}
}
