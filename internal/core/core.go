// Package core is ELSI itself: the build processor of Section IV. The
// System implements base.ModelBuilder, so any map-and-sort learned
// index plugs it in where its original training step ran. For every
// index model requested, the System summarizes the partition
// (cardinality and KS distance to uniform), asks the method selector
// for the best index building method under the preference factor
// lambda (Equation 2), runs that method to obtain the reduced training
// set Ds, trains on Ds, and computes the empirical error bounds over
// the full partition — Algorithm 1, lines 3-7.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"elsi/internal/base"
	"elsi/internal/floats"
	"elsi/internal/kstest"
	"elsi/internal/methods"
	"elsi/internal/rmi"
	"elsi/internal/scorer"
)

// SelectorKind chooses how the System picks a build method.
type SelectorKind int

const (
	// SelectorLearned uses the trained FFN method scorer (the ELSI
	// default).
	SelectorLearned SelectorKind = iota
	// SelectorRandom picks a pool method uniformly at random — the
	// "Rand" ablation of Table II.
	SelectorRandom
	// SelectorFixed always uses Config.Fixed.
	SelectorFixed
)

// Config assembles an ELSI system.
type Config struct {
	// Trainer is the base index's model family (train() of Alg. 1).
	Trainer rmi.Trainer
	// Lambda is the build/query preference of Equation 2. The zero
	// value means "unset" and selects the experiments' default 0.8
	// unless LambdaSet is true.
	Lambda float64
	// LambdaSet marks Lambda as explicitly chosen, so that λ = 0 — a
	// legitimate preference meaning pure query-cost optimization (the
	// left end of the Fig. 9 sweep) — is honored instead of being
	// replaced by the default.
	LambdaSet bool
	// WQ is the query-frequency weight (paper: 1.0).
	WQ float64
	// Pool lists the applicable methods for the base index; empty
	// means all six. LISA-style indices exclude the point-synthesizing
	// methods (CL, RL).
	Pool []string
	// Selector picks the selection policy.
	Selector SelectorKind
	// Fixed names the method used with SelectorFixed.
	Fixed string
	// Scorer is the trained method scorer (required for
	// SelectorLearned).
	Scorer *scorer.Scorer
	// Seed drives the random selector and the stochastic methods.
	Seed int64
	// Workers bounds the parallel build stages (key mapping, sorting,
	// error-bound scans, pool pre-training) of the default method
	// builders: 0 means GOMAXPROCS, 1 forces serial builds. Builds are
	// bit-identical across worker counts.
	Workers int
	// Builders overrides the default method builders (keyed by method
	// name); nil entries fall back to PoolBuilders defaults.
	Builders map[string]base.ModelBuilder
}

// System is the ELSI build processor.
type System struct {
	cfg      Config
	builders map[string]base.ModelBuilder
	rng      *rand.Rand

	mu         sync.Mutex
	selections map[string]int
}

// NewSystem validates cfg and returns a System.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Trainer == nil {
		return nil, fmt.Errorf("core: Trainer is required")
	}
	// the default applies to every selector kind: Lambda() reports it
	// and ablation selectors must be comparable at the same preference
	if floats.Eq(cfg.Lambda, 0) && !cfg.LambdaSet {
		cfg.Lambda = 0.8
	}
	if math.IsNaN(cfg.Lambda) || cfg.Lambda < 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("core: Lambda %v outside [0, 1]", cfg.Lambda)
	}
	if cfg.WQ <= 0 {
		cfg.WQ = 1
	}
	if len(cfg.Pool) == 0 {
		cfg.Pool = methods.PoolNames()
	}
	if cfg.Selector == SelectorLearned && cfg.Scorer == nil {
		return nil, fmt.Errorf("core: SelectorLearned requires a trained Scorer")
	}
	if cfg.Selector == SelectorFixed {
		found := false
		for _, m := range cfg.Pool {
			if m == cfg.Fixed {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("core: fixed method %q not in pool %v", cfg.Fixed, cfg.Pool)
		}
	}
	builders := scorer.PoolBuildersWorkers(cfg.Trainer, cfg.Seed, cfg.Workers)
	for name, b := range cfg.Builders {
		builders[name] = b
	}
	// MR's synthetic pool is pre-trained offline (Section VII-B2);
	// warming it here keeps that cost out of the measured builds.
	for _, b := range builders {
		if p, ok := b.(interface{ Prepare() }); ok {
			p.Prepare()
		}
	}
	return &System{
		cfg:        cfg,
		builders:   builders,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		selections: map[string]int{},
	}, nil
}

// MustNewSystem is NewSystem panicking on error (for tests and
// examples).
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements base.ModelBuilder.
func (s *System) Name() string { return "ELSI" }

// BuildModel implements base.ModelBuilder: summarize, select, reduce,
// train, bound.
func (s *System) BuildModel(d *base.SortedData) (*rmi.Bounded, base.BuildStats) {
	method := s.selectMethod(d)
	s.mu.Lock()
	s.selections[method]++
	s.mu.Unlock()
	b, ok := s.builders[method]
	if !ok {
		b = &base.Direct{Trainer: s.cfg.Trainer, Workers: s.cfg.Workers}
	}
	return b.BuildModel(d)
}

// selectMethod runs the configured selection policy on the partition
// summary.
func (s *System) selectMethod(d *base.SortedData) string {
	switch s.cfg.Selector {
	case SelectorFixed:
		return s.cfg.Fixed
	case SelectorRandom:
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.cfg.Pool[s.rng.Intn(len(s.cfg.Pool))]
	default:
		dist := 0.0
		if d.Len() > 0 {
			dist = kstest.DistanceToUniform(d.Keys, d.Keys[0], d.Keys[d.Len()-1])
		}
		sel := &scorer.Selector{Scorer: s.cfg.Scorer, Lambda: s.cfg.Lambda, WQ: s.cfg.WQ, Pool: s.cfg.Pool}
		return sel.Select(d.Len(), dist)
	}
}

// Selections returns how often each method has been chosen since
// construction (for the experiment reports).
func (s *System) Selections() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.selections))
	for k, v := range s.selections {
		out[k] = v
	}
	return out
}

// ResetSelections clears the selection counters.
func (s *System) ResetSelections() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.selections = map[string]int{}
}

// Lambda returns the configured preference factor.
func (s *System) Lambda() float64 { return s.cfg.Lambda }

// PoolForIndex returns the applicable method pool for a base index by
// name: LISA excludes the methods that synthesize points outside the
// data set (Section VII-A).
func PoolForIndex(indexName string) []string {
	if indexName == "LISA" {
		var pool []string
		for _, m := range methods.PoolNames() {
			if !methods.SynthesizesPoints(m) || m == methods.NameMR {
				// MR reuses models rather than feeding synthetic points
				// into the index's grid construction, so it remains
				// applicable (the paper only excludes CL and RL).
				pool = append(pool, m)
			}
		}
		return pool
	}
	return methods.PoolNames()
}

// TrainScorer generates ground truth and trains the method scorer in
// one step — the offline "system preparation" of Section VII-B2.
func TrainScorer(gen scorer.GenConfig, cfg scorer.Config) (*scorer.Scorer, []scorer.Sample, error) {
	samples := scorer.GenerateSamples(gen)
	sc, err := scorer.Train(samples, cfg)
	return sc, samples, err
}
