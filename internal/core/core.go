// Package core is ELSI itself: the build processor of Section IV. The
// System implements base.ModelBuilder, so any map-and-sort learned
// index plugs it in where its original training step ran. For every
// index model requested, the System summarizes the partition
// (cardinality and KS distance to uniform), asks the method selector
// for the best index building method under the preference factor
// lambda (Equation 2), runs that method to obtain the reduced training
// set Ds, trains on Ds, and computes the empirical error bounds over
// the full partition — Algorithm 1, lines 3-7.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"elsi/internal/base"
	"elsi/internal/floats"
	"elsi/internal/kstest"
	"elsi/internal/methods"
	"elsi/internal/parallel"
	"elsi/internal/rmi"
	"elsi/internal/scorer"
)

// SelectorKind chooses how the System picks a build method.
type SelectorKind int

const (
	// SelectorLearned uses the trained FFN method scorer (the ELSI
	// default).
	SelectorLearned SelectorKind = iota
	// SelectorRandom picks a pool method uniformly at random — the
	// "Rand" ablation of Table II.
	SelectorRandom
	// SelectorFixed always uses Config.Fixed.
	SelectorFixed
)

// Config assembles an ELSI system.
type Config struct {
	// Trainer is the base index's model family (train() of Alg. 1).
	Trainer rmi.Trainer
	// Lambda is the build/query preference of Equation 2. The zero
	// value means "unset" and selects the experiments' default 0.8
	// unless LambdaSet is true.
	Lambda float64
	// LambdaSet marks Lambda as explicitly chosen, so that λ = 0 — a
	// legitimate preference meaning pure query-cost optimization (the
	// left end of the Fig. 9 sweep) — is honored instead of being
	// replaced by the default.
	LambdaSet bool
	// WQ is the query-frequency weight (paper: 1.0).
	WQ float64
	// Pool lists the applicable methods for the base index; empty
	// means all six. LISA-style indices exclude the point-synthesizing
	// methods (CL, RL).
	Pool []string
	// Selector picks the selection policy.
	Selector SelectorKind
	// Fixed names the method used with SelectorFixed.
	Fixed string
	// Scorer is the trained method scorer (required for
	// SelectorLearned).
	Scorer *scorer.Scorer
	// Seed drives the random selector and the stochastic methods.
	Seed int64
	// Workers bounds the parallel build stages (key mapping, sorting,
	// error-bound scans, pool pre-training) of the default method
	// builders: 0 means GOMAXPROCS, 1 forces serial builds. Builds are
	// bit-identical across worker counts.
	Workers int
	// Builders overrides the default method builders (keyed by method
	// name); nil entries fall back to PoolBuilders defaults.
	Builders map[string]base.ModelBuilder
	// BuildTimeout, when positive, is the budget granted to each
	// attempt of the degradation ladder: a method that has not produced
	// a model within it is cancelled and the next rung tries with a
	// fresh budget. Zero means no per-attempt budget. The terminal
	// piecewise rung ignores it — it is the guarantee that BuildModel
	// always returns an index.
	BuildTimeout time.Duration
	// Workload, when Derived, seeds the live preference: method ranking
	// uses its λ/wQ instead of the Lambda/WQ constants until a newer
	// profile is adopted via ApplyWorkload. The zero value keeps the
	// static configuration.
	Workload WorkloadProfile
	// LambdaHysteresis is the minimum λ move an offered profile needs
	// to displace the active preference (ApplyWorkload); 0 means
	// DefaultLambdaHysteresis.
	LambdaHysteresis float64
	// WorkloadMinSamples is the minimum operation count a profile must
	// be derived from to be trusted; 0 means
	// DefaultWorkloadMinSamples.
	WorkloadMinSamples int64
}

// System is the ELSI build processor.
type System struct {
	cfg      Config
	builders map[string]base.ModelBuilder
	rng      *rand.Rand

	mu         sync.Mutex
	selections map[string]int
	fallbacks  map[string]int
	workload   WorkloadProfile
	wlApplied  int
	wlSkipped  int
}

// NewSystem validates cfg and returns a System.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Trainer == nil {
		return nil, fmt.Errorf("core: Trainer is required")
	}
	// the default applies to every selector kind: Lambda() reports it
	// and ablation selectors must be comparable at the same preference
	if floats.Eq(cfg.Lambda, 0) && !cfg.LambdaSet {
		cfg.Lambda = 0.8
	}
	if math.IsNaN(cfg.Lambda) || cfg.Lambda < 0 || cfg.Lambda > 1 {
		return nil, fmt.Errorf("core: Lambda %v outside [0, 1]", cfg.Lambda)
	}
	if cfg.WQ <= 0 {
		cfg.WQ = 1
	}
	if len(cfg.Pool) == 0 {
		cfg.Pool = methods.PoolNames()
	}
	if cfg.Selector == SelectorLearned && cfg.Scorer == nil {
		return nil, fmt.Errorf("core: SelectorLearned requires a trained Scorer")
	}
	if cfg.Selector == SelectorFixed {
		found := false
		for _, m := range cfg.Pool {
			if m == cfg.Fixed {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("core: fixed method %q not in pool %v", cfg.Fixed, cfg.Pool)
		}
	}
	if cfg.BuildTimeout < 0 {
		return nil, fmt.Errorf("core: negative BuildTimeout %v", cfg.BuildTimeout)
	}
	if err := validateWorkload(&cfg); err != nil {
		return nil, err
	}
	builders := scorer.PoolBuildersWorkers(cfg.Trainer, cfg.Seed, cfg.Workers)
	// RSP is not a pool member (it is SP's comparison baseline), but it
	// is the ladder's standing fallback before OG.
	builders[methods.NameRSP] = &methods.RSP{Rho: 0.0001, MinKeys: 500, Trainer: cfg.Trainer, Seed: cfg.Seed, Workers: cfg.Workers}
	for name, b := range cfg.Builders {
		builders[name] = b
	}
	// MR's synthetic pool is pre-trained offline (Section VII-B2);
	// warming it here keeps that cost out of the measured builds.
	for _, b := range builders {
		if p, ok := b.(interface{ Prepare() }); ok {
			p.Prepare()
		}
	}
	return &System{
		cfg:        cfg,
		builders:   builders,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		selections: map[string]int{},
		fallbacks:  map[string]int{},
		workload:   cfg.Workload,
	}, nil
}

// MustNewSystem is NewSystem panicking on error (for tests and
// examples).
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements base.ModelBuilder.
func (s *System) Name() string { return "ELSI" }

// BuildModel implements base.ModelBuilder: summarize, select, reduce,
// train, bound. Failures (errors, panics, blown budgets) in the
// selected method fall down the degradation ladder; the terminal
// piecewise rung cannot fail, so BuildModel always returns an index.
func (s *System) BuildModel(d *base.SortedData) (*rmi.Bounded, base.BuildStats) {
	b, stats, err := s.BuildModelCtx(context.Background(), d)
	if err != nil {
		// Unreachable with a background context: every rung above can
		// fail, but the terminal rung only returns the parent context's
		// error.
		panic(err)
	}
	return b, stats
}

// BuildModelCtx is BuildModel with cooperative cancellation and the
// degradation ladder made explicit. The selected method runs first;
// on error, panic, or a blown per-attempt budget (Config.BuildTimeout)
// the build falls to the next-ranked pool method, then RSP, then OG,
// and finally to a piecewise-linear build with theoretical bounds that
// cannot fail. Each rung gets a fresh budget. A non-nil error is
// returned only when ctx itself is cancelled; otherwise the index is
// never nil. Fallbacks are recorded in the returned BuildStats
// (Selected, Fallbacks) and the per-method counters (Fallbacks()).
func (s *System) BuildModelCtx(ctx context.Context, d *base.SortedData) (*rmi.Bounded, base.BuildStats, error) {
	ladder := s.ladder(d)
	selected := ladder[0]
	s.mu.Lock()
	s.selections[selected]++
	s.mu.Unlock()

	for rung, method := range ladder {
		if err := ctx.Err(); err != nil {
			return nil, base.BuildStats{}, err
		}
		b, ok := s.builders[method]
		if !ok {
			b = &base.Direct{Trainer: s.cfg.Trainer, Workers: s.cfg.Workers}
		}
		m, stats, err := s.attempt(ctx, b, d)
		if err == nil {
			stats.Selected = selected
			stats.Fallbacks = rung
			return m, stats, nil
		}
		// The parent being cancelled is not a method failure — stop
		// instead of burning the remaining rungs on a dead build.
		if ctx.Err() != nil {
			return nil, base.BuildStats{}, ctx.Err()
		}
		s.mu.Lock()
		s.fallbacks[method]++
		s.mu.Unlock()
	}

	// Terminal rung: a piecewise-linear model with theoretical bounds —
	// no training loop, no scan, no budget, nothing to inject into.
	m, stats := s.piecewiseRung(d)
	stats.Selected = selected
	stats.Fallbacks = len(ladder)
	return m, stats, nil
}

// attempt runs one ladder rung under its own budget.
func (s *System) attempt(ctx context.Context, b base.ModelBuilder, d *base.SortedData) (*rmi.Bounded, base.BuildStats, error) {
	if s.cfg.BuildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.BuildTimeout)
		defer cancel()
	}
	m, stats, err := base.BuildModelCtx(ctx, b, d)
	if err == nil && m == nil {
		// A builder must not return (nil, nil); treat it as a failure
		// so the ladder keeps its never-nil guarantee.
		err = fmt.Errorf("core: builder %s returned no model", b.Name())
	}
	return m, stats, err
}

// piecewiseRung is the ladder's terminal, cannot-fail build: a
// shrinking-cone piecewise-linear fit over the full key set with
// eps-derived bounds (rmi.NewBoundedTheoretical). Even a panic in it —
// which would take deliberately hostile inputs — is contained.
func (s *System) piecewiseRung(d *base.SortedData) (m *rmi.Bounded, stats base.BuildStats) {
	defer func() {
		if pe := parallel.Recovered(recover()); pe != nil {
			// Last resort below the last resort: a constant model over
			// the whole partition. Bounds spanning all of D keep every
			// query correct (scans degrade to full scans).
			n := d.Len()
			m = &rmi.Bounded{Model: rmi.ConstModel(0.5), N: n, ErrLo: n, ErrHi: n}
			stats = base.BuildStats{Method: methodPW, TrainSetSize: n, ErrWidth: 2 * n}
		}
	}()
	t0 := time.Now()
	m = rmi.NewBoundedTheoretical(d.Keys, 0)
	stats = base.BuildStats{
		Method:       methodPW,
		TrainSetSize: d.Len(),
		TrainTime:    time.Since(t0),
		ErrWidth:     m.ErrBoundsWidth(),
	}
	return m, stats
}

// methodPW names the terminal ladder rung in stats and counters. It is
// not a pool method — it only appears after every real method failed.
const methodPW = "PW"

// ladder returns the build order for d: the selection policy's pick
// first, then the remaining pool methods by descending score (learned
// selection) or pool order, then RSP, then OG.
func (s *System) ladder(d *base.SortedData) []string {
	var ranked []string
	switch s.cfg.Selector {
	case SelectorFixed:
		ranked = append(ranked, s.cfg.Fixed)
		ranked = append(ranked, s.cfg.Pool...)
	case SelectorRandom:
		s.mu.Lock()
		ranked = append(ranked, s.cfg.Pool[s.rng.Intn(len(s.cfg.Pool))])
		s.mu.Unlock()
		ranked = append(ranked, s.cfg.Pool...)
	default:
		dist := 0.0
		if d.Len() > 0 {
			dist = kstest.DistanceToUniform(d.Keys, d.Keys[0], d.Keys[d.Len()-1])
		}
		// Rank under the live preference: the adopted workload profile
		// (ApplyWorkload) displaces the config-time constants.
		s.mu.Lock()
		lam, wq := s.prefLocked()
		s.mu.Unlock()
		sel := &scorer.Selector{Scorer: s.cfg.Scorer, Lambda: lam, WQ: wq, Pool: s.cfg.Pool}
		ranked = sel.Rank(d.Len(), dist)
	}
	ranked = append(ranked, methods.NameRSP, methods.NameOG)
	// Dedupe preserving first occurrence, so each method runs at most
	// once per build.
	seen := make(map[string]bool, len(ranked))
	out := ranked[:0]
	for _, m := range ranked {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// Selections returns how often each method has been chosen since
// construction (for the experiment reports).
func (s *System) Selections() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.selections))
	for k, v := range s.selections {
		out[k] = v
	}
	return out
}

// Fallbacks returns, per method, how many of its build attempts
// failed (errored, panicked, or blew their budget) and fell to the
// next ladder rung since construction.
func (s *System) Fallbacks() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.fallbacks))
	for k, v := range s.fallbacks {
		out[k] = v
	}
	return out
}

// ResetSelections clears the selection and fallback counters.
func (s *System) ResetSelections() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.selections = map[string]int{}
	s.fallbacks = map[string]int{}
}

// Lambda returns the configured preference factor.
func (s *System) Lambda() float64 { return s.cfg.Lambda }

// PoolForIndex returns the applicable method pool for a base index by
// name: LISA excludes the methods that synthesize points outside the
// data set (Section VII-A).
func PoolForIndex(indexName string) []string {
	if indexName == "LISA" {
		var pool []string
		for _, m := range methods.PoolNames() {
			if !methods.SynthesizesPoints(m) || m == methods.NameMR {
				// MR reuses models rather than feeding synthetic points
				// into the index's grid construction, so it remains
				// applicable (the paper only excludes CL and RL).
				pool = append(pool, m)
			}
		}
		return pool
	}
	return methods.PoolNames()
}

// TrainScorer generates ground truth and trains the method scorer in
// one step — the offline "system preparation" of Section VII-B2.
func TrainScorer(gen scorer.GenConfig, cfg scorer.Config) (*scorer.Scorer, []scorer.Sample, error) {
	samples := scorer.GenerateSamples(gen)
	sc, err := scorer.Train(samples, cfg)
	return sc, samples, err
}
