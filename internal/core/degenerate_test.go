package core

import (
	"context"
	"fmt"
	"testing"

	"elsi/internal/base"
	"elsi/internal/curve"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/lisa"
	"elsi/internal/methods"
	"elsi/internal/mlindex"
	"elsi/internal/rsmi"
	"elsi/internal/scorer"
	"elsi/internal/zm"
)

// degenerateSets are the inputs that historically break index builds:
// nothing, one point, and a pile of identical points (every key equal).
func degenerateSets() map[string][]geo.Point {
	dup := make([]geo.Point, 64)
	for i := range dup {
		dup[i] = geo.Point{X: 0.25, Y: 0.75}
	}
	return map[string][]geo.Point{
		"empty":      nil,
		"single":     {{X: 0.5, Y: 0.5}},
		"duplicates": dup,
	}
}

// TestPoolBuildersDegenerateData builds every pool method (plus RSP
// and OG) directly on single-point and all-duplicate data — the model
// must come back and cover every rank. Empty partitions never reach a
// method builder (the index families short-circuit them), so they are
// covered by TestSystemDegenerateData below.
func TestPoolBuildersDegenerateData(t *testing.T) {
	builders := scorer.PoolBuildersWorkers(testTrainer(), 1, 1)
	builders[methods.NameRSP] = &methods.RSP{Rho: 0.0001, MinKeys: 500, Trainer: testTrainer(), Seed: 1}
	for name, pts := range degenerateSets() {
		if len(pts) == 0 {
			continue
		}
		d := prepared0(pts)
		for method, b := range builders {
			t.Run(method+"/"+name, func(t *testing.T) {
				m, _, err := base.BuildModelCtx(context.Background(), b, d)
				if err != nil {
					t.Fatalf("%s on %s data: %v", method, name, err)
				}
				checkCovers(t, m, d)
			})
		}
	}
}

// TestSystemDegenerateData runs the full ELSI ladder on each
// degenerate input — including the empty partition, which must come
// back as a usable (if trivial) model, never nil.
func TestSystemDegenerateData(t *testing.T) {
	for name, pts := range degenerateSets() {
		t.Run(name, func(t *testing.T) {
			d := prepared0(pts)
			s := fixedSystem(t, methods.NameSP, 0)
			m, _ := s.BuildModel(d)
			checkCovers(t, m, d)
		})
	}
}

func prepared0(pts []geo.Point) *base.SortedData {
	return base.Prepare(pts, geo.UnitRect, func(p geo.Point) float64 {
		return float64(curve.ZEncode(p, geo.UnitRect))
	})
}

// TestIndexFamiliesDegenerateData builds the learned index families on
// each degenerate input through an ELSI system and checks the basic
// query contract: stored points are found, phantom points are not,
// window results stay inside the window, and kNN returns what exists.
func TestIndexFamiliesDegenerateData(t *testing.T) {
	mk := func(t *testing.T) *System { return fixedSystem(t, methods.NameSP, 0) }
	families := map[string]func(t *testing.T) rebuildable{
		"zm1": func(t *testing.T) rebuildable {
			return zm.New(zm.Config{Space: geo.UnitRect, Builder: mk(t), Fanout: 1})
		},
		"zm4": func(t *testing.T) rebuildable {
			return zm.New(zm.Config{Space: geo.UnitRect, Builder: mk(t), Fanout: 4})
		},
		"ml": func(t *testing.T) rebuildable {
			return mlindex.New(mlindex.Config{Space: geo.UnitRect, Builder: mk(t), Refs: 4, Seed: 1})
		},
		"lisa": func(t *testing.T) rebuildable {
			return lisa.New(lisa.Config{Space: geo.UnitRect, Builder: mk(t)})
		},
		"rsmi": func(t *testing.T) rebuildable {
			return rsmi.New(rsmi.Config{Space: geo.UnitRect, Builder: mk(t), LeafCap: 16})
		},
	}
	for fam, make := range families {
		for name, pts := range degenerateSets() {
			t.Run(fam+"/"+name, func(t *testing.T) {
				ix := make(t)
				if err := ix.Build(pts); err != nil {
					t.Fatalf("Build(%s): %v", name, err)
				}
				if got := ix.Len(); got != len(pts) {
					t.Fatalf("Len = %d, want %d", got, len(pts))
				}
				phantom := geo.Point{X: 0.987, Y: 0.123}
				if ix.PointQuery(phantom) {
					t.Error("phantom point found")
				}
				win := geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
				got := ix.WindowQuery(win)
				for _, p := range got {
					if !win.Contains(p) {
						t.Errorf("window result %v outside window", p)
					}
				}
				if len(pts) == 0 {
					if len(got) != 0 {
						t.Errorf("empty build returned %d window results", len(got))
					}
					if knn := ix.KNN(phantom, 3); len(knn) != 0 {
						t.Errorf("empty build returned %d kNN results", len(knn))
					}
					return
				}
				if !ix.PointQuery(pts[0]) {
					t.Fatalf("stored point %v not found", pts[0])
				}
				if len(got) == 0 {
					t.Error("full-space window found nothing")
				}
				if len(got) > len(pts) {
					t.Errorf("window returned %d results for %d points", len(got), len(pts))
				}
				knn := ix.KNN(pts[0], 1)
				if len(knn) != 1 || knn[0] != pts[0] {
					t.Errorf("KNN(stored, 1) = %v", knn)
				}
			})
		}
	}
}

// rebuildable mirrors rebuild.Rebuildable without importing it.
type rebuildable interface {
	index.Index
	Build(pts []geo.Point) error
}

// TestIndexBuildRejectsInvalidPoints is the input-validation satellite:
// NaN/±Inf coordinates must be rejected with the typed error at every
// family's build entry.
func TestIndexBuildRejectsInvalidPoints(t *testing.T) {
	nan := func() float64 { var z float64; return 0 / z }()
	bad := [][]geo.Point{
		{{X: nan, Y: 0.5}},
		{{X: 0.5, Y: nan}},
		{{X: 0.1, Y: 0.1}, {X: 1 / func() float64 { var z float64; return z }(), Y: 0.5}},
	}
	mk := func(t *testing.T) *System { return fixedSystem(t, methods.NameSP, 0) }
	families := map[string]func(t *testing.T) rebuildable{
		"zm": func(t *testing.T) rebuildable {
			return zm.New(zm.Config{Space: geo.UnitRect, Builder: mk(t)})
		},
		"ml": func(t *testing.T) rebuildable {
			return mlindex.New(mlindex.Config{Space: geo.UnitRect, Builder: mk(t), Refs: 4, Seed: 1})
		},
		"lisa": func(t *testing.T) rebuildable {
			return lisa.New(lisa.Config{Space: geo.UnitRect, Builder: mk(t)})
		},
		"rsmi": func(t *testing.T) rebuildable {
			return rsmi.New(rsmi.Config{Space: geo.UnitRect, Builder: mk(t)})
		},
		"bruteforce": func(t *testing.T) rebuildable { return index.NewBruteForce() },
	}
	for fam, make := range families {
		for i, pts := range bad {
			t.Run(fmt.Sprintf("%s/%d", fam, i), func(t *testing.T) {
				ix := make(t)
				err := ix.Build(pts)
				var ipe *base.InvalidPointError
				if !asInvalidPoint(err, &ipe) {
					t.Fatalf("Build accepted invalid point, err = %v", err)
				}
			})
		}
	}
}

func asInvalidPoint(err error, target **base.InvalidPointError) bool {
	if err == nil {
		return false
	}
	if e, ok := err.(*base.InvalidPointError); ok {
		*target = e
		return true
	}
	return false
}
