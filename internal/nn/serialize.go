package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// networkWire is the gob wire form of a Network. Adam state is
// deliberately not persisted: a loaded network is ready for inference
// and fresh optimizer state is allocated if training resumes.
type networkWire struct {
	Sizes []int
	W     [][]float64
	B     [][]float64
}

// MarshalBinary implements encoding.BinaryMarshaler. ELSI persists its
// offline-trained components (method scorer, rebuild predictor, MR
// pool models) so the preparation cost is paid once, as the paper's
// "one-off task" framing requires.
func (n *Network) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	wire := networkWire{Sizes: n.sizes, W: n.w, B: n.b}
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("nn: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (n *Network) UnmarshalBinary(data []byte) error {
	var wire networkWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return fmt.Errorf("nn: decode: %w", err)
	}
	if len(wire.Sizes) < 2 || len(wire.W) != len(wire.Sizes)-1 || len(wire.B) != len(wire.Sizes)-1 {
		return fmt.Errorf("nn: malformed network encoding")
	}
	for l := 0; l < len(wire.Sizes)-1; l++ {
		if len(wire.W[l]) != wire.Sizes[l]*wire.Sizes[l+1] || len(wire.B[l]) != wire.Sizes[l+1] {
			return fmt.Errorf("nn: layer %d shape mismatch", l)
		}
	}
	n.sizes = wire.Sizes
	n.w = wire.W
	n.b = wire.B
	n.mw, n.vw, n.mb, n.vb = nil, nil, nil, nil
	n.step = 0
	return nil
}
