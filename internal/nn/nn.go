// Package nn is a small, dependency-free feed-forward neural network
// used everywhere the paper uses a PyTorch FFN: the per-partition index
// models, the method scorer, the rebuild predictor, and the DQN of the
// RL build method. It supports dense layers with ReLU hidden
// activations, an identity output layer, L2 loss, and the Adam
// optimizer — matching the training recipe in Section VII-B1 of the
// paper (ReLU hidden layers, L2 loss, Adam, learning rate 0.01).
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"elsi/internal/floats"
)

// Config controls training.
type Config struct {
	LearningRate float64 // Adam step size; the paper uses 0.01
	Epochs       int     // full passes over the training set
	BatchSize    int     // minibatch size; <=0 means full batch
	Seed         int64   // RNG seed for weight init and shuffling

	// Cancel, when non-nil, is polled at each epoch boundary; a true
	// return stops training early. Train then returns the loss of the
	// last completed epoch and ErrCancelled, leaving the network with
	// whatever weights it had — a usable (if under-trained) model.
	Cancel func() bool
}

// DefaultConfig mirrors the paper's hyper-parameters with an epoch
// count sized for CPU training.
func DefaultConfig() Config {
	return Config{LearningRate: 0.01, Epochs: 150, BatchSize: 256, Seed: 1}
}

// Network is a fully-connected feed-forward network. Hidden layers use
// ReLU; the output layer is linear so the same network serves both the
// regression heads (rank prediction, cost prediction) and, with a
// 0/1-target L2 loss, the binary rebuild predictor.
type Network struct {
	sizes []int       // layer widths, input first
	w     [][]float64 // w[l] is a (sizes[l+1] x sizes[l]) row-major matrix
	b     [][]float64 // b[l] has sizes[l+1] entries

	// Adam state, lazily allocated by Train.
	mw, vw [][]float64
	mb, vb [][]float64
	step   int
}

// New creates a network with the given layer sizes (at least two:
// input and output) and He-initialized weights.
func New(rng *rand.Rand, sizes ...int) *Network {
	if len(sizes) < 2 {
		panic("nn: need at least input and output sizes")
	}
	n := &Network{sizes: append([]int(nil), sizes...)}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		scale := math.Sqrt(2.0 / float64(in))
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		n.w = append(n.w, w)
		n.b = append(n.b, make([]float64, out))
	}
	return n
}

// Sizes returns the layer widths.
func (n *Network) Sizes() []int { return append([]int(nil), n.sizes...) }

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for l := range n.w {
		total += len(n.w[l]) + len(n.b[l])
	}
	return total
}

// Forward computes the network output for a single input vector.
func (n *Network) Forward(x []float64) []float64 {
	if len(x) != n.sizes[0] {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), n.sizes[0]))
	}
	a := x
	last := len(n.w) - 1
	for l := range n.w {
		out := n.sizes[l+1]
		in := n.sizes[l]
		z := make([]float64, out)
		w := n.w[l]
		for o := 0; o < out; o++ {
			s := n.b[l][o]
			row := w[o*in : (o+1)*in]
			for i, v := range a {
				s += row[i] * v
			}
			if l != last && s < 0 { // ReLU on hidden layers
				s = 0
			}
			z[o] = s
		}
		a = z
	}
	return a
}

// Forward1 is a convenience for scalar-output networks.
func (n *Network) Forward1(x []float64) float64 {
	return n.Forward(x)[0]
}

// activations runs a forward pass retaining per-layer activations for
// backpropagation. The returned slice has one entry per layer including
// the input.
func (n *Network) activations(x []float64) [][]float64 {
	acts := make([][]float64, len(n.sizes))
	acts[0] = x
	last := len(n.w) - 1
	for l := range n.w {
		out, in := n.sizes[l+1], n.sizes[l]
		z := make([]float64, out)
		w := n.w[l]
		a := acts[l]
		for o := 0; o < out; o++ {
			s := n.b[l][o]
			row := w[o*in : (o+1)*in]
			for i, v := range a {
				s += row[i] * v
			}
			if l != last && s < 0 {
				s = 0
			}
			z[o] = s
		}
		acts[l+1] = z
	}
	return acts
}

// grads accumulates parameter gradients for one example into gw/gb
// given its activations and the loss gradient at the output
// (dL/dyhat). Returns nothing; gw/gb are updated in place.
func (n *Network) backprop(acts [][]float64, dOut []float64, gw, gb [][]float64) {
	delta := dOut
	for l := len(n.w) - 1; l >= 0; l-- {
		out, in := n.sizes[l+1], n.sizes[l]
		a := acts[l]
		w := n.w[l]
		for o := 0; o < out; o++ {
			d := delta[o]
			if floats.Eq(d, 0) {
				continue
			}
			gb[l][o] += d
			grow := gw[l][o*in : (o+1)*in]
			for i, v := range a {
				grow[i] += d * v
			}
		}
		if l == 0 {
			break
		}
		// propagate to previous layer through ReLU
		prev := make([]float64, in)
		for o := 0; o < out; o++ {
			d := delta[o]
			if floats.Eq(d, 0) {
				continue
			}
			row := w[o*in : (o+1)*in]
			for i := range prev {
				prev[i] += d * row[i]
			}
		}
		for i := range prev {
			if acts[l][i] <= 0 { // ReLU derivative
				prev[i] = 0
			}
		}
		delta = prev
	}
}

// ErrCancelled is returned by Train when Config.Cancel stops a run at
// an epoch boundary. The network keeps the weights of the epochs that
// did complete.
var ErrCancelled = errors.New("nn: training cancelled")

// Train fits the network to (xs, ys) with minibatch Adam minimizing the
// mean L2 loss. It returns the final epoch's mean loss.
func (n *Network) Train(xs, ys [][]float64, cfg Config) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("nn: empty training set")
	}
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("nn: %d inputs vs %d targets", len(xs), len(ys))
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.01
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	batch := cfg.BatchSize
	if batch <= 0 || batch > len(xs) {
		batch = len(xs)
	}
	n.ensureAdam()
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	gw := zerosLike(n.w)
	gb := zerosLike(n.b)
	scratch := n.NewScratch()

	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Cancel != nil && cfg.Cancel() {
			return lastLoss, ErrCancelled
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		epochLoss := 0.0
		for start := 0; start < len(idx); start += batch {
			end := start + batch
			if end > len(idx) {
				end = len(idx)
			}
			zero(gw)
			zero(gb)
			for _, k := range idx[start:end] {
				n.forwardScratch(scratch, xs[k])
				yhat := scratch.acts[len(scratch.acts)-1]
				y := ys[k]
				dOut := scratch.dOut
				for o := range yhat {
					diff := yhat[o] - y[o]
					epochLoss += diff * diff
					dOut[o] = 2 * diff
				}
				n.backpropScratch(scratch, dOut, gw, gb)
			}
			n.adamStep(gw, gb, end-start, cfg.LearningRate)
		}
		lastLoss = epochLoss / float64(len(xs))
	}
	return lastLoss, nil
}

// TrainStep performs a single Adam update on the given minibatch and
// returns its mean loss. The DQN uses this to learn online from replay
// samples.
func (n *Network) TrainStep(xs, ys [][]float64, lr float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n.ensureAdam()
	gw := zerosLike(n.w)
	gb := zerosLike(n.b)
	scratch := n.NewScratch()
	loss := 0.0
	for k := range xs {
		n.forwardScratch(scratch, xs[k])
		yhat := scratch.acts[len(scratch.acts)-1]
		dOut := scratch.dOut
		for o := range yhat {
			diff := yhat[o] - ys[k][o]
			loss += diff * diff
			dOut[o] = 2 * diff
		}
		n.backpropScratch(scratch, dOut, gw, gb)
	}
	n.adamStep(gw, gb, len(xs), lr)
	return loss / float64(len(xs))
}

// TrainStepMasked is TrainStep with a per-output mask: only outputs
// with mask true contribute loss and gradient. The DQN uses it to
// update only the Q-value of the action actually taken.
func (n *Network) TrainStepMasked(xs, ys [][]float64, masks [][]bool, lr float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n.ensureAdam()
	gw := zerosLike(n.w)
	gb := zerosLike(n.b)
	scratch := n.NewScratch()
	loss := 0.0
	count := 0
	for k := range xs {
		n.forwardScratch(scratch, xs[k])
		yhat := scratch.acts[len(scratch.acts)-1]
		dOut := scratch.dOut
		for o := range dOut {
			dOut[o] = 0 // masked outputs contribute no gradient
		}
		for o := range yhat {
			if !masks[k][o] {
				continue
			}
			diff := yhat[o] - ys[k][o]
			loss += diff * diff
			dOut[o] = 2 * diff
			count++
		}
		n.backpropScratch(scratch, dOut, gw, gb)
	}
	n.adamStep(gw, gb, len(xs), lr)
	if count == 0 {
		return 0
	}
	return loss / float64(count)
}

// Clone returns a deep copy of the network weights (Adam state is not
// copied). The DQN uses clones as target networks; the MR build method
// clones pre-trained models before handing them out.
func (n *Network) Clone() *Network {
	c := &Network{sizes: append([]int(nil), n.sizes...)}
	for l := range n.w {
		c.w = append(c.w, append([]float64(nil), n.w[l]...))
		c.b = append(c.b, append([]float64(nil), n.b[l]...))
	}
	return c
}

// CopyWeightsFrom overwrites n's weights with src's. Layer sizes must
// match.
func (n *Network) CopyWeightsFrom(src *Network) {
	if len(n.sizes) != len(src.sizes) {
		panic("nn: CopyWeightsFrom size mismatch")
	}
	for l := range n.w {
		copy(n.w[l], src.w[l])
		copy(n.b[l], src.b[l])
	}
}

func (n *Network) ensureAdam() {
	if n.mw != nil {
		return
	}
	n.mw = zerosLike(n.w)
	n.vw = zerosLike(n.w)
	n.mb = zerosLike(n.b)
	n.vb = zerosLike(n.b)
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

func (n *Network) adamStep(gw, gb [][]float64, batch int, lr float64) {
	n.step++
	bc1 := 1 - math.Pow(adamBeta1, float64(n.step))
	bc2 := 1 - math.Pow(adamBeta2, float64(n.step))
	inv := 1.0 / float64(batch)
	for l := range n.w {
		update(n.w[l], gw[l], n.mw[l], n.vw[l], inv, lr, bc1, bc2)
		update(n.b[l], gb[l], n.mb[l], n.vb[l], inv, lr, bc1, bc2)
	}
}

func update(w, g, m, v []float64, inv, lr, bc1, bc2 float64) {
	for i := range w {
		gi := g[i] * inv
		m[i] = adamBeta1*m[i] + (1-adamBeta1)*gi
		v[i] = adamBeta2*v[i] + (1-adamBeta2)*gi*gi
		mh := m[i] / bc1
		vh := v[i] / bc2
		w[i] -= lr * mh / (math.Sqrt(vh) + adamEps)
	}
}

func zerosLike(src [][]float64) [][]float64 {
	out := make([][]float64, len(src))
	for i := range src {
		out[i] = make([]float64, len(src[i]))
	}
	return out
}

func zero(m [][]float64) {
	for i := range m {
		for j := range m[i] {
			m[i][j] = 0
		}
	}
}
