package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := New(rng, 3, 8, 2)
	out := n.Forward([]float64{0.1, 0.2, 0.3})
	if len(out) != 2 {
		t.Fatalf("output size = %d, want 2", len(out))
	}
	sizes := n.Sizes()
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 8 || sizes[2] != 2 {
		t.Errorf("Sizes = %v", sizes)
	}
	if got, want := n.NumParams(), 3*8+8+8*2+2; got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
}

func TestForwardPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong input size")
		}
	}()
	n := New(rand.New(rand.NewSource(1)), 2, 1)
	n.Forward([]float64{1})
}

func TestTrainLinearFunction(t *testing.T) {
	// y = 2x + 1 is learnable by even a ReLU net on [0,1].
	rng := rand.New(rand.NewSource(3))
	n := New(rng, 1, 16, 1)
	var xs, ys [][]float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 200
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{2*x + 1})
	}
	loss, err := n.Train(xs, ys, Config{LearningRate: 0.01, Epochs: 300, BatchSize: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-3 {
		t.Errorf("final loss %v too high", loss)
	}
	if got := n.Forward1([]float64{0.5}); math.Abs(got-2) > 0.1 {
		t.Errorf("f(0.5) = %v, want ~2", got)
	}
}

func TestTrainNonlinearFunction(t *testing.T) {
	// y = x^2: requires the hidden ReLU layer.
	rng := rand.New(rand.NewSource(4))
	n := New(rng, 1, 32, 1)
	var xs, ys [][]float64
	for i := 0; i < 400; i++ {
		x := float64(i)/200 - 1 // [-1, 1]
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{x * x})
	}
	loss, err := n.Train(xs, ys, Config{LearningRate: 0.01, Epochs: 400, BatchSize: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 5e-3 {
		t.Errorf("final loss %v too high for x^2", loss)
	}
	if got := n.Forward1([]float64{0.8}); math.Abs(got-0.64) > 0.1 {
		t.Errorf("f(0.8) = %v, want ~0.64", got)
	}
}

func TestTrainErrors(t *testing.T) {
	n := New(rand.New(rand.NewSource(1)), 1, 1)
	if _, err := n.Train(nil, nil, DefaultConfig()); err == nil {
		t.Error("expected error on empty training set")
	}
	if _, err := n.Train([][]float64{{1}}, nil, DefaultConfig()); err == nil {
		t.Error("expected error on length mismatch")
	}
}

func TestTrainStepReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := New(rng, 2, 8, 1)
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := [][]float64{{0}, {1}, {1}, {0}} // XOR
	first := n.TrainStep(xs, ys, 0.01)
	var last float64
	for i := 0; i < 3000; i++ {
		last = n.TrainStep(xs, ys, 0.01)
	}
	if last >= first {
		t.Errorf("loss did not decrease: first=%v last=%v", first, last)
	}
	if last > 0.05 {
		t.Errorf("XOR loss = %v, want < 0.05", last)
	}
}

func TestTrainStepMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := New(rng, 1, 8, 2)
	// Only output 0 is supervised toward 1; output 1 has an absurd
	// target but is masked out, so it must stay near its initial value.
	before := n.Forward([]float64{0.5})[1]
	xs := [][]float64{{0.5}}
	ys := [][]float64{{1, 1e6}}
	masks := [][]bool{{true, false}}
	for i := 0; i < 500; i++ {
		n.TrainStepMasked(xs, ys, masks, 0.01)
	}
	out := n.Forward([]float64{0.5})
	if math.Abs(out[0]-1) > 0.05 {
		t.Errorf("masked-in output = %v, want ~1", out[0])
	}
	if math.Abs(out[1]-before) > 5 {
		t.Errorf("masked-out output drifted toward target: %v (started %v)", out[1], before)
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := New(rng, 1, 4, 1)
	c := n.Clone()
	x := []float64{0.3}
	if n.Forward1(x) != c.Forward1(x) {
		t.Fatal("clone differs immediately")
	}
	// training the original must not affect the clone
	n.TrainStep([][]float64{{0.3}}, [][]float64{{100}}, 0.1)
	if n.Forward1(x) == c.Forward1(x) {
		t.Error("clone tracks original after training")
	}
}

func TestCopyWeightsFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := New(rng, 2, 4, 1)
	b := New(rng, 2, 4, 1)
	x := []float64{0.1, 0.9}
	if a.Forward1(x) == b.Forward1(x) {
		t.Skip("networks coincidentally equal")
	}
	b.CopyWeightsFrom(a)
	if a.Forward1(x) != b.Forward1(x) {
		t.Error("CopyWeightsFrom did not copy weights")
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() *Network {
		rng := rand.New(rand.NewSource(42))
		n := New(rng, 1, 8, 1)
		xs := [][]float64{{0}, {0.5}, {1}}
		ys := [][]float64{{0}, {1}, {0}}
		n.Train(xs, ys, Config{LearningRate: 0.01, Epochs: 50, BatchSize: 2, Seed: 9})
		return n
	}
	a, b := build(), build()
	if a.Forward1([]float64{0.3}) != b.Forward1([]float64{0.3}) {
		t.Error("training is not deterministic under fixed seeds")
	}
}

func BenchmarkForward(b *testing.B) {
	n := New(rand.New(rand.NewSource(1)), 1, 32, 1)
	x := []float64{0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Forward1(x)
	}
}

func BenchmarkTrainEpoch1k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := New(rng, 1, 32, 1)
	var xs, ys [][]float64
	for i := 0; i < 1000; i++ {
		x := rng.Float64()
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{x * x})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Train(xs, ys, Config{LearningRate: 0.01, Epochs: 1, BatchSize: 256, Seed: 1})
	}
}
