package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := New(rng, 2, 8, 3)
	// train a little so weights are non-trivial
	n.TrainStep([][]float64{{0.1, 0.2}}, [][]float64{{1, 2, 3}}, 0.01)
	data, err := n.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var m Network
	if err := m.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.7}
	a, b := n.Forward(x), m.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// the loaded network must be trainable (fresh Adam state)
	if loss := m.TrainStep([][]float64{{0, 0}}, [][]float64{{0, 0, 0}}, 0.01); math.IsNaN(loss) {
		t.Error("loaded network cannot train")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var n Network
	if err := n.UnmarshalBinary([]byte("not gob")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestUnmarshalRejectsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := New(rng, 2, 4, 1)
	data, _ := n.MarshalBinary()
	// corrupt: decode, break a layer, re-encode via a fresh marshal of
	// a mismatched network is easier — craft by truncating a weight row
	var m Network
	if err := m.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	m.w[0] = m.w[0][:3] // 2*4=8 expected
	bad, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var z Network
	if err := z.UnmarshalBinary(bad); err == nil {
		t.Error("shape mismatch accepted")
	}
}

// TestBackpropMatchesNumericalGradient is the core correctness check
// of the training substrate: analytic gradients from backprop must
// match central-difference numerical gradients.
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := New(rng, 2, 5, 2)
	x := []float64{0.4, -0.7}
	y := []float64{0.2, -0.1}

	loss := func() float64 {
		out := n.Forward(x)
		s := 0.0
		for i := range out {
			d := out[i] - y[i]
			s += d * d
		}
		return s
	}

	// analytic gradient
	gw := zerosLike(n.w)
	gb := zerosLike(n.b)
	acts := n.activations(x)
	out := acts[len(acts)-1]
	dOut := make([]float64, len(out))
	for i := range out {
		dOut[i] = 2 * (out[i] - y[i])
	}
	n.backprop(acts, dOut, gw, gb)

	const eps = 1e-6
	check := func(params []float64, grads []float64, label string) {
		for i := range params {
			old := params[i]
			params[i] = old + eps
			up := loss()
			params[i] = old - eps
			down := loss()
			params[i] = old
			num := (up - down) / (2 * eps)
			if math.Abs(num-grads[i]) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v vs numerical %v", label, i, grads[i], num)
			}
		}
	}
	for l := range n.w {
		check(n.w[l], gw[l], "w")
		check(n.b[l], gb[l], "b")
	}
}
