package nn

import (
	"math/rand"
	"testing"
)

// TestScratchMatchesReference asserts the scratch forward/backprop
// paths are bit-identical to the allocating reference implementation
// — the property that keeps parallel builds reproducible.
func TestScratchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := New(rng, 2, 16, 8, 3)
	s := n.NewScratch()
	for trial := 0; trial < 50; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		acts := n.activations(x)
		n.forwardScratch(s, x)
		for l := range acts {
			for i := range acts[l] {
				if acts[l][i] != s.acts[l][i] {
					t.Fatalf("trial %d: act[%d][%d] = %v (scratch) vs %v (reference)",
						trial, l, i, s.acts[l][i], acts[l][i])
				}
			}
		}
		dOut := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		gw1, gb1 := zerosLike(n.w), zerosLike(n.b)
		gw2, gb2 := zerosLike(n.w), zerosLike(n.b)
		n.backprop(acts, dOut, gw1, gb1)
		n.backpropScratch(s, dOut, gw2, gb2)
		for l := range gw1 {
			for i := range gw1[l] {
				if gw1[l][i] != gw2[l][i] {
					t.Fatalf("trial %d: gw[%d][%d] = %v (scratch) vs %v (reference)",
						trial, l, i, gw2[l][i], gw1[l][i])
				}
			}
			for i := range gb1[l] {
				if gb1[l][i] != gb2[l][i] {
					t.Fatalf("trial %d: gb[%d][%d] mismatch", trial, l, i)
				}
			}
		}
	}
}

func TestPredictorMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := New(rng, 1, 16, 1)
	pred := n.Predictor()
	for trial := 0; trial < 100; trial++ {
		x := []float64{rng.Float64()}
		want := n.Forward(x)
		got := pred(x)
		if got[0] != want[0] {
			t.Fatalf("trial %d: Predictor = %v, Forward = %v", trial, got[0], want[0])
		}
	}
}

func TestPredictorAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := New(rng, 1, 16, 1)
	pred := n.Predictor()
	x := []float64{0.25}
	allocs := testing.AllocsPerRun(200, func() {
		pred(x)
	})
	if allocs != 0 {
		t.Fatalf("Predictor allocates %.1f objects per call, want 0", allocs)
	}
}

func TestScratchMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := New(rng, 1, 8, 1)
	b := New(rng, 1, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("ForwardScratch with mismatched scratch did not panic")
		}
	}()
	a.ForwardScratch(b.NewScratch(), []float64{0})
}

func BenchmarkForwardScratch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := New(rng, 1, 16, 1)
	pred := n.Predictor()
	x := []float64{0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred(x)
	}
}
