package nn

import "elsi/internal/floats"

// Scratch holds the reusable forward/backprop buffers for one
// network. The training and bounds-scan hot paths used to allocate
// fresh activation and delta slices per sample per layer; a Scratch
// amortizes those to one allocation per (network, caller). A Scratch
// is NOT safe for concurrent use — it is threaded explicitly so that
// concurrent callers (e.g. the chunks of a parallel error-bound scan)
// each own their own.
type Scratch struct {
	sizes  []int
	acts   [][]float64 // acts[0] aliases the current input
	deltas [][]float64 // deltas[l] holds the loss gradient at layer l's input
	dOut   []float64
}

// NewScratch allocates scratch buffers matching n's layer sizes.
func (n *Network) NewScratch() *Scratch {
	s := &Scratch{
		sizes:  append([]int(nil), n.sizes...),
		acts:   make([][]float64, len(n.sizes)),
		deltas: make([][]float64, len(n.sizes)),
		dOut:   make([]float64, n.sizes[len(n.sizes)-1]),
	}
	for l := 1; l < len(n.sizes); l++ {
		s.acts[l] = make([]float64, n.sizes[l])
	}
	for l := 0; l < len(n.sizes); l++ {
		s.deltas[l] = make([]float64, n.sizes[l])
	}
	return s
}

// compatible reports whether s was allocated for n's architecture.
func (s *Scratch) compatible(n *Network) bool {
	if len(s.sizes) != len(n.sizes) {
		return false
	}
	for i := range s.sizes {
		if s.sizes[i] != n.sizes[i] {
			return false
		}
	}
	return true
}

// forwardScratch runs a forward pass retaining per-layer activations
// in s.acts. It performs the exact arithmetic of activations(), so
// results are bit-identical; the only difference is buffer reuse.
func (n *Network) forwardScratch(s *Scratch, x []float64) {
	s.acts[0] = x
	last := len(n.w) - 1
	for l := range n.w {
		out, in := n.sizes[l+1], n.sizes[l]
		z := s.acts[l+1]
		w := n.w[l]
		a := s.acts[l]
		for o := 0; o < out; o++ {
			sum := n.b[l][o]
			row := w[o*in : (o+1)*in]
			for i, v := range a {
				sum += row[i] * v
			}
			if l != last && sum < 0 {
				sum = 0
			}
			z[o] = sum
		}
	}
}

// backpropScratch is backprop() with the per-layer delta buffers
// drawn from s instead of allocated per call. Identical arithmetic.
func (n *Network) backpropScratch(s *Scratch, dOut []float64, gw, gb [][]float64) {
	delta := dOut
	for l := len(n.w) - 1; l >= 0; l-- {
		out, in := n.sizes[l+1], n.sizes[l]
		a := s.acts[l]
		w := n.w[l]
		for o := 0; o < out; o++ {
			d := delta[o]
			if floats.Eq(d, 0) {
				continue
			}
			gb[l][o] += d
			grow := gw[l][o*in : (o+1)*in]
			for i, v := range a {
				grow[i] += d * v
			}
		}
		if l == 0 {
			break
		}
		prev := s.deltas[l]
		for i := range prev {
			prev[i] = 0
		}
		for o := 0; o < out; o++ {
			d := delta[o]
			if floats.Eq(d, 0) {
				continue
			}
			row := w[o*in : (o+1)*in]
			for i := range prev {
				prev[i] += d * row[i]
			}
		}
		for i := range prev {
			if s.acts[l][i] <= 0 { // ReLU derivative
				prev[i] = 0
			}
		}
		delta = prev
	}
}

// ForwardScratch computes the network output for x into s's buffers
// and returns the output activation slice (owned by s — valid until
// the next ForwardScratch call with the same scratch).
func (n *Network) ForwardScratch(s *Scratch, x []float64) []float64 {
	if !s.compatible(n) {
		panic("nn: scratch/network size mismatch")
	}
	n.forwardScratch(s, x)
	return s.acts[len(s.acts)-1]
}

// Predictor returns an allocation-free single-input forward function
// backed by its own scratch. The returned closure is NOT safe for
// concurrent use; hand each goroutine its own Predictor. Output
// slices are reused between calls.
func (n *Network) Predictor() func(x []float64) []float64 {
	s := n.NewScratch()
	return func(x []float64) []float64 {
		return n.ForwardScratch(s, x)
	}
}
