// Package kdb implements the KDB-tree baseline (Robinson 1981): a
// kd-tree whose leaves are fixed-capacity data blocks, bulk-loaded by
// recursive median splits and supporting dynamic insertion with leaf
// splits. Queries are exact.
package kdb

import (
	"sort"
	"sync"

	"elsi/internal/base"
	"elsi/internal/floats"
	"elsi/internal/geo"
	"elsi/internal/pqueue"
	"elsi/internal/store"
)

// Tree is a KDB-tree.
type Tree struct {
	root  *node
	space geo.Rect
	size  int
}

type node struct {
	// internal
	axis        int // 0 = x, 1 = y
	split       float64
	left, right *node
	// leaf
	pts  []geo.Point
	leaf bool
	// bounds of the region this node covers (maintained for kNN)
	region geo.Rect
}

// New returns an empty KDB-tree over space.
func New(space geo.Rect) *Tree {
	return &Tree{space: space}
}

// Name implements index.Index.
func (t *Tree) Name() string { return "KDB" }

// Len implements index.Index.
func (t *Tree) Len() int { return t.size }

// Build implements index.Index with recursive median bulk loading.
func (t *Tree) Build(pts []geo.Point) error {
	if err := base.ValidatePoints(pts); err != nil {
		return err
	}
	buf := append([]geo.Point(nil), pts...)
	t.root = bulkLoad(buf, 0, t.space)
	t.size = len(pts)
	return nil
}

func bulkLoad(pts []geo.Point, depth int, region geo.Rect) *node {
	if len(pts) <= store.BlockSize {
		return &node{leaf: true, pts: pts, region: region}
	}
	axis := depth % 2
	split, mid, ok := partitionSorted(pts, axis)
	if !ok {
		// all coordinates equal on this axis: try the other one
		axis = 1 - axis
		split, mid, ok = partitionSorted(pts, axis)
		if !ok {
			// all points identical: oversized leaf
			return &node{leaf: true, pts: pts, region: region}
		}
	}
	lr, rr := region, region
	if axis == 0 {
		lr.MaxX, rr.MinX = split, split
	} else {
		lr.MaxY, rr.MinY = split, split
	}
	return &node{
		axis:   axis,
		split:  split,
		left:   bulkLoad(pts[:mid], depth+1, lr),
		right:  bulkLoad(pts[mid:], depth+1, rr),
		region: region,
	}
}

// partitionSorted sorts pts on axis and returns a split value and
// position such that every point in pts[:mid] has coord < split and
// every point in pts[mid:] has coord >= split, with both sides
// non-empty. ok is false when no such split exists (all coordinates
// equal on the axis).
func partitionSorted(pts []geo.Point, axis int) (split float64, mid int, ok bool) {
	if axis == 0 {
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	} else {
		sort.Slice(pts, func(i, j int) bool { return pts[i].Y < pts[j].Y })
	}
	if floats.Eq(coord(pts[0], axis), coord(pts[len(pts)-1], axis)) {
		return 0, 0, false
	}
	split = coord(pts[len(pts)/2], axis)
	mid = sort.Search(len(pts), func(i int) bool { return coord(pts[i], axis) >= split })
	if mid == 0 {
		// split equals the minimum: advance to the next distinct value
		hi := sort.Search(len(pts), func(i int) bool { return coord(pts[i], axis) > split })
		split = coord(pts[hi], axis)
		mid = hi
	}
	return split, mid, true
}

// descend returns the leaf that should hold p.
//
//elsi:noalloc
func (t *Tree) descend(p geo.Point) *node {
	n := t.root
	for n != nil && !n.leaf {
		if coord(p, n.axis) < n.split {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

//elsi:noalloc
func coord(p geo.Point, axis int) float64 {
	if axis == 0 {
		return p.X
	}
	return p.Y
}

// Insert implements index.Inserter: the point is added to its leaf,
// which splits by median on its longer region side when it overflows.
func (t *Tree) Insert(p geo.Point) {
	if t.root == nil {
		t.root = &node{leaf: true, region: t.space}
	}
	n := t.descend(p)
	n.pts = append(n.pts, p)
	t.size++
	if len(n.pts) > store.BlockSize {
		splitLeaf(n)
	}
}

// splitLeaf converts the overflowing leaf n into an internal node with
// two leaf children, splitting on the longer side of its region.
func splitLeaf(n *node) {
	axis := 0
	if n.region.Height() > n.region.Width() {
		axis = 1
	}
	pts := n.pts
	sort.Slice(pts, func(i, j int) bool { return coord(pts[i], axis) < coord(pts[j], axis) })
	mid := len(pts) / 2
	split := coord(pts[mid], axis)
	// guard against all-equal coordinates: try the other axis, else
	// keep an oversized leaf (duplicates beyond capacity).
	if floats.Eq(coord(pts[0], axis), coord(pts[len(pts)-1], axis)) {
		axis = 1 - axis
		sort.Slice(pts, func(i, j int) bool { return coord(pts[i], axis) < coord(pts[j], axis) })
		split = coord(pts[mid], axis)
		if floats.Eq(coord(pts[0], axis), coord(pts[len(pts)-1], axis)) {
			return
		}
	}
	// partition strictly: left < split, right >= split; adjust mid
	lo := sort.Search(len(pts), func(i int) bool { return coord(pts[i], axis) >= split })
	if lo == 0 {
		// split value is the minimum; choose the next distinct value
		hi := sort.Search(len(pts), func(i int) bool { return coord(pts[i], axis) > split })
		if hi == len(pts) {
			return
		}
		split = coord(pts[hi], axis)
		lo = hi
	}
	lr, rr := n.region, n.region
	if axis == 0 {
		lr.MaxX, rr.MinX = split, split
	} else {
		lr.MaxY, rr.MinY = split, split
	}
	left := &node{leaf: true, pts: append([]geo.Point(nil), pts[:lo]...), region: lr}
	right := &node{leaf: true, pts: append([]geo.Point(nil), pts[lo:]...), region: rr}
	n.leaf = false
	n.pts = nil
	n.axis = axis
	n.split = split
	n.left = left
	n.right = right
}

// PointQuery implements index.Index.
//
//elsi:noalloc
func (t *Tree) PointQuery(p geo.Point) bool {
	n := t.descend(p)
	if n == nil {
		return false
	}
	for _, q := range n.pts {
		if q == p {
			return true
		}
	}
	return false
}

// Delete implements index.Deleter.
func (t *Tree) Delete(p geo.Point) bool {
	n := t.descend(p)
	if n == nil {
		return false
	}
	for i, q := range n.pts {
		if q == p {
			n.pts[i] = n.pts[len(n.pts)-1]
			n.pts = n.pts[:len(n.pts)-1]
			t.size--
			return true
		}
	}
	return false
}

// WindowQuery implements index.Index (exact).
func (t *Tree) WindowQuery(win geo.Rect) []geo.Point {
	return t.WindowQueryAppend(win, nil)
}

// WindowQueryAppend implements index.WindowAppender with a closure-free
// recursive walk threading out through the recursion.
//
//elsi:noalloc
func (t *Tree) WindowQueryAppend(win geo.Rect, out []geo.Point) []geo.Point {
	return windowNode(t.root, win, out)
}

//elsi:noalloc
func windowNode(n *node, win geo.Rect, out []geo.Point) []geo.Point {
	if n == nil || !win.Intersects(n.region) {
		return out
	}
	if n.leaf {
		for _, p := range n.pts {
			if win.Contains(p) {
				out = append(out, p)
			}
		}
		return out
	}
	out = windowNode(n.left, win, out)
	return windowNode(n.right, win, out)
}

// knnScratch pairs the traversal min-heap with the k-best candidate
// heap; pooled so repeated kNN searches reuse both backing arrays.
type knnScratch struct {
	pq   pqueue.Min
	best pqueue.KBest
}

var knnScratchPool = sync.Pool{New: func() interface{} { return new(knnScratch) }}

// KNN implements index.Index with best-first search over node regions.
func (t *Tree) KNN(q geo.Point, k int) []geo.Point {
	return t.KNNAppend(q, k, nil)
}

// KNNAppend implements index.KNNAppender; KNN delegates here, so both
// entry points return identical answers.
//
//elsi:noalloc
func (t *Tree) KNNAppend(q geo.Point, k int, out []geo.Point) []geo.Point {
	if t.root == nil || k <= 0 || t.size == 0 {
		return out
	}
	s := knnScratchPool.Get().(*knnScratch)
	defer knnScratchPool.Put(s)
	s.pq.Reset()
	s.best.Reset(k)
	s.pq.Push(t.root, t.root.region.Dist2(q))
	for s.pq.Len() > 0 {
		it := s.pq.Pop()
		if s.best.Full() && it.Dist > s.best.Worst() {
			break
		}
		n := it.Value.(*node)
		if n.leaf {
			for _, p := range n.pts {
				s.best.Offer(p, p.Dist2(q))
			}
			continue
		}
		for _, c := range [2]*node{n.left, n.right} {
			if c != nil {
				s.pq.Push(c, c.region.Dist2(q))
			}
		}
	}
	return s.best.AppendPoints(out)
}

// Depth returns the height of the tree.
func (t *Tree) Depth() int {
	var walk func(*node) int
	walk = func(n *node) int {
		if n == nil || n.leaf {
			return 1
		}
		l, r := walk(n.left), walk(n.right)
		if r > l {
			l = r
		}
		return l + 1
	}
	return walk(t.root)
}
