package kdb

import (
	"testing"

	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/indextest"
)

func TestConformance(t *testing.T) {
	for _, name := range dataset.All() {
		t.Run(name, func(t *testing.T) {
			pts := dataset.MustGenerate(name, 3000, 1)
			indextest.Conformance(t, New(geo.UnitRect), pts, 42, 1.0, 1.0)
		})
	}
}

func TestInsertDelete(t *testing.T) {
	tr := New(geo.UnitRect)
	pts := dataset.MustGenerate(dataset.Skewed, 500, 2)
	tr.Build(pts)
	p := geo.Point{X: 0.777, Y: 0.111}
	tr.Insert(p)
	if !tr.PointQuery(p) {
		t.Error("inserted point not found")
	}
	if !tr.Delete(p) {
		t.Error("Delete failed")
	}
	if tr.PointQuery(p) {
		t.Error("deleted point still found")
	}
}

func TestInsertSplitsLeaves(t *testing.T) {
	tr := New(geo.UnitRect)
	tr.Build(nil)
	pts := dataset.MustGenerate(dataset.Uniform, 2000, 3)
	for _, p := range pts {
		tr.Insert(p)
	}
	if tr.Len() != 2000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Depth() < 3 {
		t.Errorf("Depth = %d after 2000 inserts; leaves did not split", tr.Depth())
	}
	bf := index.NewBruteForce()
	bf.Build(pts)
	win := geo.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.4, MaxY: 0.4}
	got := tr.WindowQuery(win)
	want := bf.WindowQuery(win)
	if len(got) != len(want) || index.Recall(got, want) != 1 {
		t.Errorf("window after dynamic inserts: got %d want %d", len(got), len(want))
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := New(geo.UnitRect)
	pts := make([]geo.Point, 500)
	for i := range pts {
		pts[i] = geo.Point{X: 0.5, Y: 0.5}
	}
	tr.Build(pts)
	if tr.Len() != 500 {
		t.Errorf("Len = %d", tr.Len())
	}
	if !tr.PointQuery(geo.Point{X: 0.5, Y: 0.5}) {
		t.Error("duplicate point not found")
	}
	// dynamic inserts of duplicates must also terminate
	tr2 := New(geo.UnitRect)
	tr2.Build(nil)
	for i := 0; i < 300; i++ {
		tr2.Insert(geo.Point{X: 0.25, Y: 0.25})
	}
	if tr2.Len() != 300 {
		t.Errorf("duplicate insert Len = %d", tr2.Len())
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(geo.UnitRect)
	tr.Build(nil)
	if tr.PointQuery(geo.Point{X: 0.5, Y: 0.5}) {
		t.Error("phantom point")
	}
	if got := tr.KNN(geo.Point{}, 3); got != nil {
		t.Errorf("empty KNN = %v", got)
	}
}

func BenchmarkBuild100k(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := New(geo.UnitRect)
		tr.Build(pts)
	}
}

func BenchmarkPointQuery(b *testing.B) {
	pts := dataset.MustGenerate(dataset.OSM1, 100000, 1)
	tr := New(geo.UnitRect)
	tr.Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.PointQuery(pts[i%len(pts)])
	}
}

func TestDepthGrows(t *testing.T) {
	small := New(geo.UnitRect)
	small.Build(dataset.MustGenerate(dataset.Uniform, 200, 9))
	big := New(geo.UnitRect)
	big.Build(dataset.MustGenerate(dataset.Uniform, 20000, 9))
	if big.Depth() <= small.Depth() {
		t.Errorf("depth did not grow: %d vs %d", big.Depth(), small.Depth())
	}
}
