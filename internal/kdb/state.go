package kdb

import (
	"fmt"

	"elsi/internal/snapshot"
)

// stateVersion is the on-disk version of the KDB-tree state encoding.
const stateVersion = 1

// maxDecodeDepth caps the recursive node decode against hostile
// snapshots. KDB splits alternate axes over real data; depth 512
// exceeds anything the bulk loader or leaf splits can produce.
const maxDecodeDepth = 512

// StateAppend implements snapshot.Stater: the split hierarchy with
// leaf blocks. The space comes from the constructor, not the snapshot.
func (t *Tree) StateAppend(b []byte) ([]byte, error) {
	b = snapshot.AppendU8(b, stateVersion)
	b = snapshot.AppendInt(b, t.size)
	b = snapshot.AppendBool(b, t.root != nil)
	if t.root != nil {
		b = appendNode(b, t.root)
	}
	return b, nil
}

func appendNode(b []byte, n *node) []byte {
	b = snapshot.AppendRect(b, n.region)
	b = snapshot.AppendBool(b, n.leaf)
	if n.leaf {
		return snapshot.AppendPoints(b, n.pts)
	}
	b = snapshot.AppendU8(b, uint8(n.axis))
	b = snapshot.AppendF64(b, n.split)
	b = appendNode(b, n.left)
	return appendNode(b, n.right)
}

// RestoreState implements snapshot.Stater; the decoded tree's total
// leaf cardinality must match the recorded size.
func (t *Tree) RestoreState(data []byte) error {
	d := snapshot.NewDec(data)
	if v := d.U8(); d.Err() == nil && v != stateVersion {
		return fmt.Errorf("kdb: unsupported state version %d", v)
	}
	size := d.Int()
	hasRoot := d.Bool()
	if err := d.Err(); err != nil {
		return fmt.Errorf("kdb: decode state: %w", err)
	}
	if size < 0 {
		return fmt.Errorf("kdb: negative size %d", size)
	}
	var root *node
	total := 0
	if hasRoot {
		var err error
		root, err = decodeNode(d, 0, &total)
		if err != nil {
			return err
		}
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("kdb: decode state: %w", err)
	}
	if total != size {
		return fmt.Errorf("kdb: size %d does not match leaf total %d", size, total)
	}
	if size > 0 && root == nil {
		return fmt.Errorf("kdb: %d entries without a root", size)
	}
	t.root = root
	t.size = size
	return nil
}

func decodeNode(d *snapshot.Dec, depth int, total *int) (*node, error) {
	if depth > maxDecodeDepth {
		return nil, fmt.Errorf("kdb: node tree deeper than %d", maxDecodeDepth)
	}
	n := &node{region: d.Rect()}
	n.leaf = d.Bool()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("kdb: decode node: %w", err)
	}
	if n.leaf {
		n.pts = d.Points()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("kdb: decode leaf: %w", err)
		}
		*total += len(n.pts)
		return n, nil
	}
	axis := d.U8()
	n.split = d.F64()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("kdb: decode node: %w", err)
	}
	if axis > 1 {
		return nil, fmt.Errorf("kdb: split axis %d out of range", axis)
	}
	n.axis = int(axis)
	var err error
	if n.left, err = decodeNode(d, depth+1, total); err != nil {
		return nil, err
	}
	if n.right, err = decodeNode(d, depth+1, total); err != nil {
		return nil, err
	}
	return n, nil
}
