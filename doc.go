// Package elsi is a from-scratch Go reproduction of "Efficiently
// Learning Spatial Indices" (Liu, Qi, Jensen, Bailey, Kulik — ICDE
// 2023): a system that accelerates the building and rebuilding of
// learned spatial indices by engineering small, distribution-
// preserving training sets.
//
// The implementation lives under internal/: the ELSI core
// (internal/core), the six index building methods (internal/methods),
// the four learned base indices ZM, ML-Index, RSMI, and LISA, the four
// traditional baselines Grid, KDB, HRR, and RR*, and the experiment
// harness (internal/bench) that regenerates every table and figure of
// the paper's evaluation. See README.md for a tour, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for paper-vs-measured results.
package elsi
