package elsi

// Microbenchmarks for the query engine: per-query latency and
// allocations of the serial and batched paths. Run with
//
//	go test -bench=Query -benchmem -run=^$
//
// The learned families report 0 allocs/op on the point and append
// paths once the per-caller scratch pools are warm.

import (
	"math/rand"
	"sync"
	"testing"

	"elsi/internal/base"
	"elsi/internal/dataset"
	"elsi/internal/geo"
	"elsi/internal/index"
	"elsi/internal/qserve"
	"elsi/internal/rmi"
	"elsi/internal/zm"
)

const queryBenchN = 20000

var (
	queryOnce sync.Once
	queryPts  []geo.Point
	queryWins []geo.Rect
	queryIxs  map[string]index.Index
)

func queryState(b *testing.B) ([]geo.Point, []geo.Rect, map[string]index.Index) {
	b.Helper()
	queryOnce.Do(func() {
		rng := rand.New(rand.NewSource(7))
		queryPts = dataset.UniformPoints(rng, queryBenchN)
		queryWins = dataset.WindowsFromData(rng, queryPts, geo.UnitRect, 200, 0.0001)
		zmIx := zm.New(zm.Config{
			Space:   geo.UnitRect,
			Builder: &base.Direct{Trainer: rmi.PiecewiseTrainer(1.0 / 256)},
			Fanout:  4,
		})
		if err := zmIx.Build(queryPts); err != nil {
			panic(err)
		}
		bf := index.NewBruteForce()
		if err := bf.Build(queryPts); err != nil {
			panic(err)
		}
		queryIxs = map[string]index.Index{"ZM": zmIx, "BruteForce": bf}
	})
	return queryPts, queryWins, queryIxs
}

func BenchmarkQueryPointZM(b *testing.B) {
	pts, _, ixs := queryState(b)
	ix := ixs["ZM"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.PointQuery(pts[i%len(pts)])
	}
}

func BenchmarkQueryWindowAppendZM(b *testing.B) {
	_, wins, ixs := queryState(b)
	ix := ixs["ZM"]
	var buf []geo.Point
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = index.AppendWindow(ix, wins[i%len(wins)], buf[:0])
	}
}

func BenchmarkQueryKNNAppendZM(b *testing.B) {
	pts, _, ixs := queryState(b)
	ix := ixs["ZM"]
	var buf []geo.Point
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = index.AppendKNN(ix, pts[i%len(pts)], 10, buf[:0])
	}
}

func BenchmarkQueryPointBatchedZM(b *testing.B) {
	pts, _, ixs := queryState(b)
	eng := qserve.New(ixs["ZM"], 0)
	batch := pts[:512]
	var out []bool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = eng.PointBatch(batch, out)
	}
}

func BenchmarkQueryWindowBatchedZM(b *testing.B) {
	_, wins, ixs := queryState(b)
	eng := qserve.New(ixs["ZM"], 0)
	var out [][]geo.Point
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = eng.WindowBatch(wins, out)
	}
}

func BenchmarkQueryWindowSerialBruteForce(b *testing.B) {
	_, wins, ixs := queryState(b)
	ix := ixs["BruteForce"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.WindowQuery(wins[i%len(wins)])
	}
}
